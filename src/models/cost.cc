#include "models/cost.h"

#include "tensor/im2col.h"
#include "util/logging.h"

namespace poe {

namespace {

ModelCost ConvCost(int64_t in_c, int64_t out_c, int64_t kernel,
                   int64_t stride, int64_t pad, int64_t& h, int64_t& w,
                   bool bias = false) {
  const int64_t out_h = ConvOutSize(h, kernel, pad, stride);
  const int64_t out_w = ConvOutSize(w, kernel, pad, stride);
  ModelCost cost;
  cost.flops = 2 * out_h * out_w * out_c * in_c * kernel * kernel;
  cost.params = out_c * in_c * kernel * kernel + (bias ? out_c : 0);
  h = out_h;
  w = out_w;
  return cost;
}

ModelCost BnReluCost(int64_t channels, int64_t h, int64_t w) {
  ModelCost cost;
  // Normalize + affine (~4 flops/element) + ReLU (1 flop/element).
  cost.flops = 5 * channels * h * w;
  cost.params = 2 * channels;
  return cost;
}

ModelCost BlockCost(int64_t in_c, int64_t out_c, int64_t stride, int64_t& h,
                    int64_t& w) {
  ModelCost cost;
  cost += BnReluCost(in_c, h, w);  // bn1 + relu1 at input resolution
  int64_t bh = h, bw = w;
  cost += ConvCost(in_c, out_c, 3, stride, 1, bh, bw);  // conv1
  cost += BnReluCost(out_c, bh, bw);                    // bn2 + relu2
  int64_t ch = bh, cw = bw;
  cost += ConvCost(out_c, out_c, 3, 1, 1, ch, cw);  // conv2
  if (in_c != out_c || stride != 1) {
    int64_t ph = h, pw = w;
    cost += ConvCost(in_c, out_c, 1, stride, 0, ph, pw);  // projection
  }
  cost.flops += out_c * ch * cw;  // residual add
  h = ch;
  w = cw;
  return cost;
}

ModelCost GroupCost(int blocks, int64_t in_c, int64_t out_c, int64_t stride,
                    int64_t& h, int64_t& w) {
  ModelCost cost;
  for (int i = 0; i < blocks; ++i) {
    cost += BlockCost(i == 0 ? in_c : out_c, out_c, i == 0 ? stride : 1, h, w);
  }
  return cost;
}

}  // namespace

ModelCost CostOfLibraryPart(const WrnConfig& config, int64_t in_h,
                            int64_t in_w, int64_t* out_h, int64_t* out_w) {
  int64_t h = in_h, w = in_w;
  ModelCost cost;
  cost += ConvCost(config.in_channels, config.conv1_channels(), 3, 1, 1, h,
                   w);
  const int blocks = config.blocks_per_group();
  cost += GroupCost(blocks, config.conv1_channels(), config.conv2_channels(),
                    1, h, w);
  cost += GroupCost(blocks, config.conv2_channels(), config.conv3_channels(),
                    2, h, w);
  if (out_h != nullptr) *out_h = h;
  if (out_w != nullptr) *out_w = w;
  return cost;
}

ModelCost CostOfExpertPart(const WrnConfig& config, int64_t in_channels,
                           int64_t in_h, int64_t in_w) {
  int64_t h = in_h, w = in_w;
  ModelCost cost;
  const int blocks = config.blocks_per_group();
  cost += GroupCost(blocks, in_channels, config.conv4_channels(), 2, h, w);
  cost += BnReluCost(config.conv4_channels(), h, w);  // head BN + ReLU
  cost.flops += config.conv4_channels() * h * w;      // global avg pool
  // Linear classifier (with bias).
  cost.flops += 2 * config.conv4_channels() * config.num_classes;
  cost.params +=
      config.conv4_channels() * config.num_classes + config.num_classes;
  return cost;
}

ModelCost CostOfWrn(const WrnConfig& config, int64_t in_h, int64_t in_w) {
  int64_t h = 0, w = 0;
  ModelCost cost = CostOfLibraryPart(config, in_h, in_w, &h, &w);
  cost += CostOfExpertPart(config, config.conv3_channels(), h, w);
  return cost;
}

ModelCost CostOfBranched(const WrnConfig& library_config,
                         const std::vector<WrnConfig>& expert_configs,
                         int64_t in_h, int64_t in_w) {
  int64_t h = 0, w = 0;
  ModelCost cost = CostOfLibraryPart(library_config, in_h, in_w, &h, &w);
  for (const WrnConfig& e : expert_configs) {
    POE_CHECK_EQ(e.conv3_channels(), library_config.conv3_channels())
        << "expert kc must match the library kc";
    cost += CostOfExpertPart(e, library_config.conv3_channels(), h, w);
  }
  return cost;
}

}  // namespace poe

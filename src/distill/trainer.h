// Generic SGD training loop with wall-clock learning-curve capture.
#ifndef POE_DISTILL_TRAINER_H_
#define POE_DISTILL_TRAINER_H_

#include <functional>
#include <vector>

#include "data/dataset.h"
#include "nn/sgd.h"
#include "util/rng.h"

namespace poe {

/// Knobs shared by every training method (paper Section 5.1: SGD with 0.9
/// momentum, 5e-4 weight decay; temperature for the distillation losses).
struct TrainOptions {
  int epochs = 12;
  int64_t batch_size = 64;
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  /// Epochs (1-based) after which lr is multiplied by lr_decay_factor.
  std::vector<int> lr_decay_epochs;
  float lr_decay_factor = 0.1f;
  float temperature = 4.0f;
  /// Record a learning-curve point every `eval_every` epochs (0 = only at
  /// the end, and only when an evaluator is provided).
  int eval_every = 0;
  uint64_t seed = 7;
  bool verbose = false;

  SgdOptions sgd() const {
    return SgdOptions{lr, momentum, weight_decay};
  }
};

/// One point of Figure 6's accuracy-vs-wall-clock curve.
struct CurvePoint {
  int epoch = 0;
  double seconds = 0.0;  ///< elapsed training wall-clock at this point
  float train_loss = 0.0f;
  float accuracy = 0.0f;  ///< evaluator output (NaN when no evaluator)
};

/// Outcome of a training run.
struct TrainResult {
  std::vector<CurvePoint> curve;
  double seconds = 0.0;
  float final_loss = 0.0f;
  /// Accuracy at the last evaluation (or NaN).
  float final_accuracy = 0.0f;
  /// Best accuracy over the curve and the wall-clock time it was reached
  /// (Figure 7's "time to best accuracy").
  float best_accuracy = 0.0f;
  double seconds_to_best = 0.0;
};

/// Evaluation hook; returns accuracy in [0, 1].
using EvalFn = std::function<float()>;

/// Per-batch step: given the batch, perform forward/backward/update and
/// return the batch loss. The loop owns shuffling, epochs, lr decay,
/// timing (evaluation time is excluded from the clock), and curve capture.
using BatchStepFn = std::function<float(const Batch& batch)>;

/// Runs the loop. `sgd` may be null when the step function manages its own
/// optimizer; when provided, its learning rate is decayed per options.
TrainResult RunTrainingLoop(const Dataset& train, const TrainOptions& options,
                            Sgd* sgd, const BatchStepFn& step,
                            const EvalFn& evaluator = nullptr);

}  // namespace poe

#endif  // POE_DISTILL_TRAINER_H_

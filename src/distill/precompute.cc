#include "distill/precompute.h"

#include <algorithm>
#include <cstring>

#include "tensor/ops.h"
#include "util/logging.h"

namespace poe {

Tensor BatchedApply(const std::function<Tensor(const Tensor&)>& fn,
                    const Tensor& images, int64_t batch_size) {
  POE_CHECK_GE(images.ndim(), 1);
  POE_CHECK_GT(batch_size, 0);
  const int64_t n = images.dim(0);
  POE_CHECK_GT(n, 0);

  Tensor out;
  int64_t row_size = 0;
  for (int64_t begin = 0; begin < n; begin += batch_size) {
    const int64_t end = std::min(begin + batch_size, n);
    Tensor chunk = fn(SliceRows(images, begin, end));
    POE_CHECK_EQ(chunk.dim(0), end - begin);
    if (!out.defined()) {
      std::vector<int64_t> shape = chunk.shape();
      shape[0] = n;
      out = Tensor(shape);
      row_size = chunk.numel() / chunk.dim(0);
    }
    std::memcpy(out.data() + begin * row_size, chunk.data(),
                sizeof(float) * chunk.numel());
  }
  return out;
}

}  // namespace poe

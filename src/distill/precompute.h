// Batched eval-mode precomputation of teacher logits / library features.
#ifndef POE_DISTILL_PRECOMPUTE_H_
#define POE_DISTILL_PRECOMPUTE_H_

#include <functional>

#include "tensor/tensor.h"

namespace poe {

/// Applies `fn` (an eval-mode model) to `images` in batches and stacks the
/// outputs along dim 0. The teacher network and the frozen library are
/// fixed during distillation, so precomputing their outputs once per
/// dataset removes them from the inner training loop entirely.
Tensor BatchedApply(const std::function<Tensor(const Tensor&)>& fn,
                    const Tensor& images, int64_t batch_size = 256);

}  // namespace poe

#endif  // POE_DISTILL_PRECOMPUTE_H_

#include "distill/specialize.h"

#include "distill/precompute.h"
#include "nn/losses.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace poe {

TrainResult TrainScratch(Module& model, const Dataset& train_local,
                         const TrainOptions& options,
                         const EvalFn& evaluator) {
  Sgd sgd(model.Parameters(), options.sgd());
  auto step = [&](const Batch& batch) {
    sgd.ZeroGrad();
    Tensor logits = model.Forward(batch.images, /*training=*/true);
    LossResult ce = SoftmaxCrossEntropy(logits, batch.labels);
    model.Backward(ce.grad);
    sgd.Step();
    return ce.loss;
  };
  return RunTrainingLoop(train_local, options, &sgd, step, evaluator);
}

TrainResult TrainStandardKd(const LogitFn& teacher, Module& student,
                            const Dataset& full_train,
                            const TrainOptions& options,
                            const EvalFn& evaluator) {
  // The teacher is fixed: compute its logits for every sample once.
  Tensor teacher_logits = BatchedApply(teacher, full_train.images);
  POE_CHECK_EQ(teacher_logits.ndim(), 2);

  Sgd sgd(student.Parameters(), options.sgd());
  auto step = [&](const Batch& batch) {
    sgd.ZeroGrad();
    Tensor t = GatherRows(teacher_logits, batch.indices);
    Tensor s = student.Forward(batch.images, /*training=*/true);
    LossResult kl = DistillationKl(t, s, options.temperature);
    student.Backward(kl.grad);
    sgd.Step();
    return kl.loss;
  };
  return RunTrainingLoop(full_train, options, &sgd, step, evaluator);
}

TrainResult TrainTransfer(Sequential& library, Sequential& head,
                          const Dataset& task_train_local,
                          const TrainOptions& options,
                          const EvalFn& evaluator) {
  // The library is frozen: precompute its features once (eval mode so
  // running statistics are untouched, the component stays bit-identical).
  Tensor features = BatchedApply(
      [&](const Tensor& x) { return library.Forward(x, false); },
      task_train_local.images);

  Sgd sgd(head.Parameters(), options.sgd());
  auto step = [&](const Batch& batch) {
    sgd.ZeroGrad();
    Tensor f = GatherRows(features, batch.indices);
    Tensor logits = head.Forward(f, /*training=*/true);
    LossResult ce = SoftmaxCrossEntropy(logits, batch.labels);
    head.Backward(ce.grad);
    sgd.Step();
    return ce.loss;
  };
  return RunTrainingLoop(task_train_local, options, &sgd, step, evaluator);
}

CkdTables PrecomputeCkdTables(const LogitFn& oracle, Sequential& library,
                              const Dataset& full_train) {
  CkdTables tables;
  tables.oracle_logits = BatchedApply(oracle, full_train.images);
  tables.library_features = BatchedApply(
      [&](const Tensor& x) { return library.Forward(x, false); },
      full_train.images);
  return tables;
}

TrainResult TrainCkdExpert(const LogitFn& oracle, Sequential& library,
                           Sequential& head, const Dataset& full_train,
                           const std::vector<int>& task_classes,
                           const TrainOptions& options,
                           const CkdOptions& ckd,
                           const EvalFn& evaluator) {
  CkdTables tables = PrecomputeCkdTables(oracle, library, full_train);
  return TrainCkdExpertWithTables(tables, head, full_train, task_classes,
                                  options, ckd, evaluator);
}

TrainResult TrainCkdExpertWithTables(const CkdTables& tables,
                                     Sequential& head,
                                     const Dataset& full_train,
                                     const std::vector<int>& task_classes,
                                     const TrainOptions& options,
                                     const CkdOptions& ckd,
                                     const EvalFn& evaluator) {
  POE_CHECK(ckd.use_soft || ckd.use_scale)
      << "CKD needs at least one loss term";
  // Oracle sub-logits t_{H_i} (Eq. 3), rows aligned with full_train.
  Tensor teacher_sub = GatherColumns(tables.oracle_logits, task_classes);
  const Tensor& features = tables.library_features;
  POE_CHECK_EQ(features.dim(0), full_train.size());

  const float soft_weight = ckd.use_soft ? 1.0f : 0.0f;
  const float scale_weight =
      ckd.use_scale ? (ckd.use_soft ? ckd.alpha : 1.0f) : 0.0f;

  Sgd sgd(head.Parameters(), options.sgd());
  auto step = [&](const Batch& batch) {
    sgd.ZeroGrad();
    Tensor t = GatherRows(teacher_sub, batch.indices);
    Tensor f = GatherRows(features, batch.indices);
    Tensor s = head.Forward(f, /*training=*/true);

    float loss = 0.0f;
    Tensor grad = Tensor::Zeros(s.shape());
    if (soft_weight > 0.0f) {
      LossResult soft = DistillationKl(t, s, options.temperature);
      loss += soft_weight * soft.loss;
      Axpy(soft_weight, soft.grad, grad);
    }
    if (scale_weight > 0.0f) {
      LossResult scale = L1LogitLoss(t, s);
      loss += scale_weight * scale.loss;
      Axpy(scale_weight, scale.grad, grad);
    }
    head.Backward(grad);
    sgd.Step();
    return loss;
  };
  return RunTrainingLoop(full_train, options, &sgd, step, evaluator);
}

}  // namespace poe

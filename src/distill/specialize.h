// Model specialization methods: Scratch, Transfer, standard KD, and CKD
// (the paper's conditional knowledge distillation, Section 4.1).
#ifndef POE_DISTILL_SPECIALIZE_H_
#define POE_DISTILL_SPECIALIZE_H_

#include <vector>

#include "data/dataset.h"
#include "distill/trainer.h"
#include "eval/metrics.h"
#include "nn/module.h"
#include "nn/sequential.h"

namespace poe {

/// CKD loss composition, Eq. (2): L_CKD = L_soft + alpha * L_scale.
/// The use_* flags implement the Table 5 ablation; with use_soft == false
/// the scale term is used unweighted (it is then the whole loss).
struct CkdOptions {
  float alpha = 0.3f;  ///< paper fixes alpha = 0.3
  bool use_soft = true;
  bool use_scale = true;
};

/// Trains `model` from scratch with cross-entropy on a task-specific
/// dataset (labels must be local indices).
TrainResult TrainScratch(Module& model, const Dataset& train_local,
                         const TrainOptions& options,
                         const EvalFn& evaluator = nullptr);

/// Standard KD, Eq. (1): distills the teacher's full softened logits into
/// `student` over the whole training set. Teacher logits are precomputed
/// once (the teacher is fixed). Student output width must equal the
/// teacher's.
TrainResult TrainStandardKd(const LogitFn& teacher, Module& student,
                            const Dataset& full_train,
                            const TrainOptions& options,
                            const EvalFn& evaluator = nullptr);

/// Transfer baseline: freezes `library` (conv1..conv3) and trains only the
/// expert head with cross-entropy on the task-specific dataset. Library
/// features are precomputed once in eval mode.
TrainResult TrainTransfer(Sequential& library, Sequential& head,
                          const Dataset& task_train_local,
                          const TrainOptions& options,
                          const EvalFn& evaluator = nullptr);

/// Conditional knowledge distillation (ours): distills the oracle's
/// *sub-logits* over `task_classes` into an expert head on top of the
/// frozen library, using ALL training data (in- and out-of-distribution),
/// with the optional L1 scale regularizer (Eq. 3-4).
TrainResult TrainCkdExpert(const LogitFn& oracle, Sequential& library,
                           Sequential& head, const Dataset& full_train,
                           const std::vector<int>& task_classes,
                           const TrainOptions& options,
                           const CkdOptions& ckd,
                           const EvalFn& evaluator = nullptr);

/// Teacher-side tables shared by all experts of one preprocessing run:
/// both the oracle and the library are fixed, so their outputs over the
/// training set are computed once and reused per expert.
struct CkdTables {
  Tensor oracle_logits;     ///< [N, |C|]
  Tensor library_features;  ///< [N, C3, h, w]
};

/// Builds the shared tables for `full_train`.
CkdTables PrecomputeCkdTables(const LogitFn& oracle, Sequential& library,
                              const Dataset& full_train);

/// CKD against precomputed tables (rows aligned with `full_train`).
TrainResult TrainCkdExpertWithTables(const CkdTables& tables,
                                     Sequential& head,
                                     const Dataset& full_train,
                                     const std::vector<int>& task_classes,
                                     const TrainOptions& options,
                                     const CkdOptions& ckd,
                                     const EvalFn& evaluator = nullptr);

}  // namespace poe

#endif  // POE_DISTILL_SPECIALIZE_H_

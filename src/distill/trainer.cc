#include "distill/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace poe {

TrainResult RunTrainingLoop(const Dataset& train, const TrainOptions& options,
                            Sgd* sgd, const BatchStepFn& step,
                            const EvalFn& evaluator) {
  POE_CHECK_GT(options.epochs, 0);
  POE_CHECK_GT(train.size(), 0);

  Rng rng(options.seed);
  BatchIterator batches(train, options.batch_size, rng, /*shuffle=*/true);

  TrainResult result;
  result.final_accuracy = std::numeric_limits<float>::quiet_NaN();
  result.best_accuracy = 0.0f;

  Stopwatch clock;
  double eval_overhead = 0.0;  // excluded from the training clock

  auto record_point = [&](int epoch, float loss) {
    CurvePoint point;
    point.epoch = epoch;
    point.seconds = clock.ElapsedSeconds() - eval_overhead;
    point.train_loss = loss;
    point.accuracy = std::numeric_limits<float>::quiet_NaN();
    if (evaluator) {
      Stopwatch eval_clock;
      point.accuracy = evaluator();
      eval_overhead += eval_clock.ElapsedSeconds();
      result.final_accuracy = point.accuracy;
      if (point.accuracy > result.best_accuracy) {
        result.best_accuracy = point.accuracy;
        result.seconds_to_best = point.seconds;
      }
    }
    result.curve.push_back(point);
  };

  float epoch_loss = 0.0f;
  for (int epoch = 1; epoch <= options.epochs; ++epoch) {
    batches.Reset();
    double loss_sum = 0.0;
    int64_t batch_count = 0;
    Batch batch;
    while (batches.Next(&batch)) {
      loss_sum += step(batch);
      ++batch_count;
    }
    epoch_loss = static_cast<float>(loss_sum / std::max<int64_t>(1, batch_count));

    if (sgd != nullptr &&
        std::find(options.lr_decay_epochs.begin(),
                  options.lr_decay_epochs.end(),
                  epoch) != options.lr_decay_epochs.end()) {
      sgd->set_lr(sgd->lr() * options.lr_decay_factor);
    }

    const bool record = options.eval_every > 0 &&
                        (epoch % options.eval_every == 0 ||
                         epoch == options.epochs);
    if (record) record_point(epoch, epoch_loss);
    if (options.verbose) {
      POE_LOG(Info) << "epoch " << epoch << "/" << options.epochs
                    << " loss=" << epoch_loss;
    }
  }
  if (result.curve.empty()) record_point(options.epochs, epoch_loss);

  result.seconds = clock.ElapsedSeconds() - eval_overhead;
  result.final_loss = epoch_loss;
  return result;
}

}  // namespace poe

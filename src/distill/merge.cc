#include "distill/merge.h"

#include <numeric>

#include "distill/precompute.h"
#include "nn/losses.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace poe {

namespace {

/// Precomputes each teacher's logits over the union dataset and returns
/// them as per-teacher tables aligned with the dataset rows.
std::vector<Tensor> PrecomputeTeacherTables(
    const std::vector<TeacherSpec>& teachers, const Dataset& data) {
  std::vector<Tensor> tables;
  tables.reserve(teachers.size());
  for (const TeacherSpec& t : teachers) {
    Tensor logits = BatchedApply(t.logits, data.images);
    POE_CHECK_EQ(logits.dim(1), static_cast<int64_t>(t.classes.size()));
    tables.push_back(std::move(logits));
  }
  return tables;
}

int64_t TotalClasses(const std::vector<TeacherSpec>& teachers) {
  int64_t total = 0;
  for (const TeacherSpec& t : teachers) total += t.classes.size();
  return total;
}

}  // namespace

TrainResult TrainSdMerge(const std::vector<TeacherSpec>& teachers,
                         Module& student, const Dataset& union_train_local,
                         const TrainOptions& options,
                         const EvalFn& evaluator) {
  POE_CHECK(!teachers.empty());
  std::vector<Tensor> tables =
      PrecomputeTeacherTables(teachers, union_train_local);
  // SD target: one concatenated logit vector per sample.
  Tensor concat = ConcatColumns(tables);

  Sgd sgd(student.Parameters(), options.sgd());
  auto step = [&](const Batch& batch) {
    sgd.ZeroGrad();
    Tensor t = GatherRows(concat, batch.indices);
    Tensor s = student.Forward(batch.images, /*training=*/true);
    LossResult kl = DistillationKl(t, s, options.temperature);
    student.Backward(kl.grad);
    sgd.Step();
    return kl.loss;
  };
  return RunTrainingLoop(union_train_local, options, &sgd, step, evaluator);
}

TrainResult TrainUhcMerge(const std::vector<TeacherSpec>& teachers,
                          Module& student, const Dataset& union_train_local,
                          const TrainOptions& options,
                          const EvalFn& evaluator) {
  POE_CHECK(!teachers.empty());
  std::vector<Tensor> tables =
      PrecomputeTeacherTables(teachers, union_train_local);
  const int64_t total_classes = TotalClasses(teachers);

  // Column index blocks of each teacher within the student's logits.
  std::vector<std::vector<int>> blocks;
  {
    int offset = 0;
    for (const TeacherSpec& t : teachers) {
      std::vector<int> cols(t.classes.size());
      std::iota(cols.begin(), cols.end(), offset);
      offset += static_cast<int>(t.classes.size());
      blocks.push_back(std::move(cols));
    }
  }

  Sgd sgd(student.Parameters(), options.sgd());
  auto step = [&](const Batch& batch) {
    sgd.ZeroGrad();
    Tensor s = student.Forward(batch.images, /*training=*/true);
    POE_CHECK_EQ(s.dim(1), total_classes);
    Tensor grad = Tensor::Zeros(s.shape());
    float loss = 0.0f;
    for (size_t i = 0; i < teachers.size(); ++i) {
      Tensor t_block = GatherRows(tables[i], batch.indices);
      Tensor s_block = GatherColumns(s, blocks[i]);
      LossResult kl = DistillationKl(t_block, s_block, options.temperature);
      loss += kl.loss;
      // Scatter the block gradient back into the unified logit gradient.
      const int64_t bc = s_block.dim(1);
      for (int64_t r = 0; r < s.dim(0); ++r) {
        for (int64_t c = 0; c < bc; ++c) {
          grad.at(r * total_classes + blocks[i][c]) = kl.grad.at(r * bc + c);
        }
      }
    }
    student.Backward(grad);
    sgd.Step();
    return loss;
  };
  return RunTrainingLoop(union_train_local, options, &sgd, step, evaluator);
}

}  // namespace poe

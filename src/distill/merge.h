// Multi-teacher model merging baselines: SD and UHC (Vongkulbhisal et al.,
// CVPR 2019), the paper's Section 5.3 comparison points.
#ifndef POE_DISTILL_MERGE_H_
#define POE_DISTILL_MERGE_H_

#include <vector>

#include "data/dataset.h"
#include "distill/trainer.h"
#include "eval/metrics.h"
#include "nn/module.h"

namespace poe {

/// One pre-built primitive-task teacher: its logit function (over its own
/// local class order) and the global class ids it covers.
struct TeacherSpec {
  LogitFn logits;
  std::vector<int> classes;
};

/// SD: the naive extension of standard distillation to multiple teachers.
/// Teacher sub-logits are concatenated into one unified logit vector and
/// jointly softmaxed as the soft target - this inherits the logit scale
/// problem, since each teacher's logits live on an arbitrary scale.
/// `union_train_local` labels must be local indices in the concatenated
/// teacher class order (used only by the evaluator, distillation itself is
/// label-free).
TrainResult TrainSdMerge(const std::vector<TeacherSpec>& teachers,
                         Module& student, const Dataset& union_train_local,
                         const TrainOptions& options,
                         const EvalFn& evaluator = nullptr);

/// UHC: unifying heterogeneous classifiers. Each teacher's softened
/// distribution is matched against the *corresponding block* of the
/// student's logits (per-block KL, normalized within each teacher's class
/// subset), avoiding joint normalization across teachers.
TrainResult TrainUhcMerge(const std::vector<TeacherSpec>& teachers,
                          Module& student, const Dataset& union_train_local,
                          const TrainOptions& options,
                          const EvalFn& evaluator = nullptr);

}  // namespace poe

#endif  // POE_DISTILL_MERGE_H_

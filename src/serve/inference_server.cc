#include "serve/inference_server.h"

#include <cstring>
#include <exception>
#include <utility>

#include "tensor/ops.h"
#include "util/fault.h"

namespace poe {

namespace {

/// True when two [n,c,h,w] inputs can share one fused forward (same image
/// geometry; row counts may differ).
bool SameGeometry(const Tensor& a, const Tensor& b) {
  return a.dim(1) == b.dim(1) && a.dim(2) == b.dim(2) &&
         a.dim(3) == b.dim(3);
}

}  // namespace

InferenceServer::InferenceServer(ModelQueryService* service, Options options)
    : service_(service), options_(options) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  if (options_.max_batch_rows < 1) options_.max_batch_rows = 1;
  if (options_.adaptive.enabled && options_.adaptive.p99_budget_ms > 0.0) {
    limiter_ = std::make_unique<AdaptiveBatchLimiter>(options_.adaptive,
                                                      options_.max_batch_rows);
  }
  workers_.reserve(options_.num_workers);
  for (int w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

InferenceServer::~InferenceServer() { Shutdown(); }

std::future<InferenceResponse> InferenceServer::Submit(
    InferenceRequest request) {
  Pending pending;
  std::future<InferenceResponse> future = pending.promise.get_future();
  Enqueue(std::move(request), std::move(pending));
  return future;
}

void InferenceServer::SubmitAsync(
    InferenceRequest request, std::function<void(InferenceResponse)> done) {
  Pending pending;
  pending.callback = std::move(done);
  Enqueue(std::move(request), std::move(pending));
}

bool InferenceServer::Resolve(Pending& pending, InferenceResponse response) {
  if (pending.callback) {
    // Exactly-once by construction: the callback is consumed here, so a
    // second Resolve on the same pending is a no-op.
    std::function<void(InferenceResponse)> done = std::move(pending.callback);
    pending.callback = nullptr;
    done(std::move(response));
    return true;
  }
  try {
    pending.promise.set_value(std::move(response));
    return true;
  } catch (const std::future_error&) {
    // Already satisfied — the "second resolve" signal, not an error.
    return false;
  }
}

void InferenceServer::Enqueue(InferenceRequest request, Pending pending) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  // The one shared admission check (core/request.h): wire decode, direct
  // service queries, and this server all validate the same way.
  if (const Status invalid = ValidatePoolRequest(request); !invalid.ok()) {
    rejected_.fetch_add(1, std::memory_order_release);
    InferenceResponse response;
    response.status = invalid;
    Resolve(pending, std::move(response));
    return;
  }

  if (options_.max_generation_lag > 0 && request.generation != 0) {
    // Generation-aware admission: a pin further behind the serving
    // generation than the configured lag is refused up front, not
    // answered by a pool the client no longer expects.
    const uint64_t current = service_->generation();
    if (current > request.generation &&
        current - request.generation > options_.max_generation_lag) {
      rejected_.fetch_add(1, std::memory_order_release);
      InferenceResponse response;
      response.status = Status::FailedPrecondition(
          "pinned generation " + std::to_string(request.generation) +
          " is " + std::to_string(current - request.generation) +
          " behind serving generation " + std::to_string(current) +
          " (max lag " + std::to_string(options_.max_generation_lag) + ")");
      response.generation = current;
      Resolve(pending, std::move(response));
      return;
    }
  }

  pending.key = CanonicalTaskKey(request.task_ids);
  if (request.deadline_ms > 0) {
    pending.deadline = Deadline::AfterMillis(request.deadline_ms);
  }
  if (pending.deadline.expired()) {
    // A non-positive (but set) or microscopic budget: shed at the door.
    // Counts as deadline_expired, not rejected — the request was well-
    // formed and admitted; its budget was simply gone.
    deadline_expired_.fetch_add(1, std::memory_order_release);
    InferenceResponse response;
    response.status = Status::DeadlineExceeded("deadline expired at submission");
    Resolve(pending, std::move(response));
    return;
  }
  pending.request = std::move(request);
  Status reject = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      reject = Status::FailedPrecondition("inference server is shut down");
    } else if (queue_.size() >= options_.queue_capacity) {
      // Backpressure: fail fast instead of queueing unbounded latency.
      reject = Status::ResourceExhausted(
          "request queue full (" + std::to_string(options_.queue_capacity) +
          " pending)");
    } else {
      queue_.push_back(std::move(pending));
    }
  }
  if (!reject.ok()) {
    // Resolved OUTSIDE mu_: an async callback may re-enter stats() or
    // queue_depth().
    rejected_.fetch_add(1, std::memory_order_release);
    InferenceResponse response;
    response.status = std::move(reject);
    Resolve(pending, std::move(response));
    return;
  }
  cv_.notify_one();
}

void InferenceServer::WorkerLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and fully drained

      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Greedy coalescing: absorb pending requests with the same image
      // geometry until the row budget is hit. With trunk fusion on, the
      // task set may differ - different models still share one trunk
      // pass; off, only same-model requests ride along (legacy batching).
      // The cap is re-read per batch so the adaptive limiter's moves take
      // effect on the very next assembly.
      const int64_t max_rows = current_max_batch_rows();
      int64_t rows = batch.front().request.input.dim(0);
      for (auto it = queue_.begin(); it != queue_.end() && rows < max_rows;) {
        if ((options_.fuse_trunk || it->key == batch.front().key) &&
            SameGeometry(it->request.input, batch.front().request.input) &&
            rows + it->request.input.dim(0) <= max_rows) {
          rows += it->request.input.dim(0);
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    ServeBatch(std::move(batch));
  }
}

void InferenceServer::ServeBatch(std::vector<Pending> batch) {
  try {
    ServeBatchImpl(batch);
  } catch (const std::exception& e) {
    // No hung futures, ever: if the batch body threw (allocation failure
    // mid-forward, ...), resolve whatever it left unresolved. set_value
    // on an already-satisfied promise throws future_error — that is the
    // "already resolved" signal, not an error.
    const Status status = Status::Internal(
        std::string("batch worker exception: ") + e.what());
    for (Pending& pending : batch) {
      InferenceResponse response;
      response.status = status;
      if (Resolve(pending, std::move(response))) {
        completed_.fetch_add(1, std::memory_order_release);
      }
    }
  }
}

void InferenceServer::ServeBatchImpl(std::vector<Pending>& batch) {
  // Each request's queue wait ends now, when processing starts (a
  // coalesced request waited less than the batch leader).
  std::vector<double> queue_ms(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    queue_ms[i] = batch[i].submitted.ElapsedMillis();
  }

  auto finish = [&](size_t i, InferenceResponse response) {
    Pending& pending = batch[i];
    response.queue_ms = queue_ms[i];
    response.total_ms = pending.submitted.ElapsedMillis();
    latency_.Record(response.total_ms);
    if (limiter_) limiter_->Record(response.total_ms);
    qps_.Record();
    completed_.fetch_add(1, std::memory_order_release);
    Resolve(pending, std::move(response));
  };

  // Deadline shedding, not completion: the request never ran, so it skips
  // the latency/QPS surface and lands in its own terminal counter.
  auto expire = [&](size_t i) {
    Pending& pending = batch[i];
    InferenceResponse response;
    response.status = Status::DeadlineExceeded(
        "deadline expired after " +
        std::to_string(pending.submitted.ElapsedMillis()) + " ms queued");
    response.queue_ms = queue_ms[i];
    response.total_ms = pending.submitted.ElapsedMillis();
    deadline_expired_.fetch_add(1, std::memory_order_release);
    Resolve(pending, std::move(response));
  };

  // Dequeue-time shedding: a request whose budget lapsed in the queue is
  // resolved right here — the forward pass is never spent on it.
  std::vector<size_t> live;
  live.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].deadline.expired()) {
      expire(i);
    } else {
      live.push_back(i);
    }
  }
  if (live.empty()) return;

  // Forward-path fault site: delay kinds model a slow expert (the batch
  // simply takes longer and downstream deadline checks shed what lapsed);
  // error kinds fail every live member of this batch.
  {
    const Status fault = PoeFaultHit("server.forward");
    if (!fault.ok()) {
      for (size_t i : live) {
        InferenceResponse response;
        response.status = fault;
        finish(i, std::move(response));
      }
      return;
    }
  }

  // Group the batch by canonical task set (first-arrival order). Each
  // group is one model; groups sharing a trunk fuse their trunk forward.
  struct Group {
    std::vector<size_t> members;  ///< indices into `batch`, arrival order
    std::shared_ptr<TaskModel> model;
    int64_t rows = 0;
  };
  std::vector<Group> groups;
  for (size_t i : live) {
    Group* group = nullptr;
    for (Group& g : groups) {
      if (batch[g.members.front()].key == batch[i].key) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.emplace_back();
      group = &groups.back();
    }
    group->members.push_back(i);
    group->rows += batch[i].request.input.dim(0);
  }

  // The loosest (largest remaining) member budget bounds the group's
  // assembly: the model also serves the member with the most time left,
  // so tighter members must not cut its retry window short.
  auto loosest_deadline = [&](const Group& g) -> Deadline {
    const Deadline* best = nullptr;
    for (size_t i : g.members) {
      const Deadline& d = batch[i].deadline;
      if (d.unlimited()) return Deadline();
      if (best == nullptr || d.remaining_ms() > best->remaining_ms()) {
        best = &d;
      }
    }
    return best != nullptr ? *best : Deadline();
  };

  // Assemble each group's model; a failed assembly fails only that
  // group's futures (a bad key must not poison co-batched requests).
  std::vector<Group*> valid;
  for (Group& g : groups) {
    auto model_result =
        service_->Query(batch[g.members.front()].request.task_ids,
                        loosest_deadline(g));
    if (!model_result.ok()) {
      for (size_t i : g.members) {
        InferenceResponse response;
        response.status = model_result.status();
        finish(i, std::move(response));
      }
      continue;
    }
    g.model = model_result.ValueOrDie();
    // Post-assembly shedding: assembly (with retries/backoff) may have
    // consumed a member's whole budget — drop it before the forward.
    std::vector<size_t> members_left;
    g.rows = 0;
    for (size_t i : g.members) {
      if (batch[i].deadline.expired()) {
        expire(i);
      } else {
        members_left.push_back(i);
        g.rows += batch[i].request.input.dim(0);
      }
    }
    g.members = std::move(members_left);
    if (!g.members.empty()) valid.push_back(&g);
  }
  if (valid.empty()) return;

  // Concatenates the rows of `members` into one tensor (no copy for a
  // lone single-request group - the common unloaded case).
  auto fuse_inputs = [&](const std::vector<size_t>& members,
                         int64_t rows) -> Tensor {
    if (members.size() == 1) return batch[members.front()].request.input;
    const Tensor& first = batch[members.front()].request.input;
    Tensor fused({rows, first.dim(1), first.dim(2), first.dim(3)});
    float* dst = fused.data();
    for (size_t i : members) {
      const Tensor& in = batch[i].request.input;
      std::memcpy(dst, in.data(), sizeof(float) * in.numel());
      dst += in.numel();
    }
    return fused;
  };

  // Completes a group's futures from its model-local logits.
  // `served_rows` is the row count of the fused pass that produced them.
  auto deliver = [&](Group& g, Tensor logits, int64_t served_rows) {
    // Counters move BEFORE the promises resolve: a client that joins its
    // future and immediately reads stats() must see itself accounted.
    batched_requests_.fetch_add(static_cast<int64_t>(g.members.size()),
                                std::memory_order_relaxed);
    const std::vector<int>& classes = g.model->global_classes();
    const int64_t num_classes = logits.dim(1);
    int64_t row0 = 0;
    for (size_t i : g.members) {
      const int64_t n = batch[i].request.input.dim(0);
      InferenceResponse response;
      response.status = Status::OK();
      response.precision = g.model->serving_precision();
      response.degraded_branches = g.model->degraded_branches();
      response.trunk_degraded = g.model->trunk_degraded();
      response.generation = g.model->generation();
      if (batch[i].request.generation != 0 &&
          batch[i].request.generation != g.model->generation()) {
        // The client pinned a generation this answer does not come from —
        // telemetry for upgrade observability, never an error.
        service_->NoteStaleGeneration();
      }
      if (g.members.size() == 1) {
        response.logits = std::move(logits);
      } else {
        response.logits = Tensor({n, num_classes});
        std::memcpy(response.logits.data(), logits.data() + row0 * num_classes,
                    sizeof(float) * n * num_classes);
      }
      response.global_classes = classes;
      response.predictions.resize(n);
      for (int64_t r = 0; r < n; ++r) {
        response.predictions[r] = classes[ArgmaxRow(response.logits, r)];
      }
      response.batch_rows = served_rows;
      row0 += n;
      finish(i, std::move(response));
    }
  };

  if (valid.size() == 1) {
    // One model: the classic fused forward.
    Group& g = *valid.front();
    Tensor logits = g.model->Logits(fuse_inputs(g.members, g.rows));
    batches_.fetch_add(1, std::memory_order_relaxed);
    deliver(g, std::move(logits), g.rows);
    return;
  }

  // Trunk-reuse batching: partition the groups by trunk identity (all
  // models of one service share a trunk, so `rest` is defensive), run ONE
  // library forward over every shared group's rows, then fan out each
  // model's expert heads over its slice of the feature rows. Trunk rows
  // are independent, so the fused features - and therefore the f32
  // logits - are bitwise identical to solo forwards.
  std::vector<Group*> shared, rest;
  const std::shared_ptr<Sequential>& trunk = valid.front()->model->trunk();
  for (Group* g : valid) {
    (g->model->trunk() == trunk ? shared : rest).push_back(g);
  }

  if (shared.size() == 1) {
    rest.push_back(shared.front());
    shared.clear();
  }
  if (!shared.empty()) {
    std::vector<size_t> all_members;
    int64_t total_rows = 0;
    for (Group* g : shared) {
      all_members.insert(all_members.end(), g->members.begin(),
                         g->members.end());
      total_rows += g->rows;
    }
    Tensor features =
        shared.front()->model->TrunkFeatures(fuse_inputs(all_members,
                                                         total_rows));
    batches_.fetch_add(1, std::memory_order_relaxed);
    trunk_fused_batches_.fetch_add(1, std::memory_order_relaxed);
    trunk_fused_rows_.fetch_add(total_rows, std::memory_order_relaxed);

    // Slice each group's contiguous feature rows and run its heads.
    const int64_t row_stride = features.numel() / features.dim(0);
    std::vector<int64_t> slice_shape = features.shape();
    int64_t row0 = 0;
    for (Group* g : shared) {
      slice_shape[0] = g->rows;
      Tensor slice(slice_shape);
      std::memcpy(slice.data(), features.data() + row0 * row_stride,
                  sizeof(float) * g->rows * row_stride);
      row0 += g->rows;
      deliver(*g, g->model->LogitsFromFeatures(slice), total_rows);
    }
  }

  // Defensive path: groups whose model does not share the fused trunk
  // (or a lone leftover group) run standalone.
  for (Group* g : rest) {
    Tensor logits = g->model->Logits(fuse_inputs(g->members, g->rows));
    batches_.fetch_add(1, std::memory_order_relaxed);
    deliver(*g, std::move(logits), g->rows);
  }
}

void InferenceServer::Shutdown() {
  // shutdown_mu_ serializes concurrent Shutdown() calls (including the
  // destructor racing an explicit call): the loser blocks until the
  // winner has joined everything, then finds workers_ empty. workers_ is
  // only touched at construction and under this mutex.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  // Defensive drain: workers only exit on an empty queue, so this should
  // find nothing — but a hung future is the one failure mode this server
  // promises away, so any straggler is resolved here rather than leaked.
  std::deque<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
  }
  for (Pending& pending : leftover) {
    InferenceResponse response;
    response.status =
        Status::FailedPrecondition("inference server is shut down");
    if (Resolve(pending, std::move(response))) {
      rejected_.fetch_add(1, std::memory_order_release);
    }
  }
}

ServeStats InferenceServer::stats() const {
  ServeStats stats = service_->serve_stats();
  // The latency surface of a server is end-to-end (queue wait + assembly
  // + forward), so the server's histogram replaces the service's
  // assembly-only percentiles. ONE snapshot feeds every percentile so
  // they describe a single state even under concurrent completions.
  const HistogramSnapshot latency = latency_.snapshot();
  stats.p50_ms = latency.Percentile(0.50);
  stats.p95_ms = latency.Percentile(0.95);
  stats.p99_ms = latency.Percentile(0.99);
  stats.max_ms = latency.max_ms();
  stats.avg_ms = latency.avg_ms();
  stats.qps = qps_.Rate();
  // Terminal buckets load BEFORE submitted: with acquire/release pairing
  // on the terminal stores this read order makes the live identity
  //   submitted >= completed + rejected + deadline_expired
  // one-sided — a concurrent request can be counted submitted but not yet
  // terminal, never the reverse. (All four equal out after a drain.)
  stats.rejected = rejected_.load(std::memory_order_acquire);
  stats.completed = completed_.load(std::memory_order_acquire);
  stats.deadline_expired = deadline_expired_.load(std::memory_order_acquire);
  stats.submitted = submitted_.load(std::memory_order_acquire);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.batched_requests =
      batched_requests_.load(std::memory_order_relaxed);
  stats.trunk_fused_batches =
      trunk_fused_batches_.load(std::memory_order_relaxed);
  stats.trunk_fused_rows = trunk_fused_rows_.load(std::memory_order_relaxed);
  stats.batch_rows_cap = current_max_batch_rows();
  stats.queue_depth = static_cast<int64_t>(queue_depth());
  return stats;
}

size_t InferenceServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace poe

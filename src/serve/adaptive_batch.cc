#include "serve/adaptive_batch.h"

#include <algorithm>

namespace poe {

AdaptiveBatchLimiter::AdaptiveBatchLimiter(
    const AdaptiveBatchOptions& options, int64_t initial_rows)
    : options_(options) {
  if (options_.min_rows < 1) options_.min_rows = 1;
  if (options_.max_rows <= 0) options_.max_rows = initial_rows;
  if (options_.max_rows < options_.min_rows) {
    options_.max_rows = options_.min_rows;
  }
  if (options_.epoch_samples < 4) options_.epoch_samples = 4;
  if (options_.regrow_headroom <= 0.0 || options_.regrow_headroom >= 1.0) {
    options_.regrow_headroom = 0.5;
  }
  int64_t start = initial_rows;
  start = std::max(options_.min_rows, std::min(options_.max_rows, start));
  rows_.store(start, std::memory_order_relaxed);
  samples_.reserve(static_cast<size_t>(options_.epoch_samples));
}

void AdaptiveBatchLimiter::Record(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.push_back(ms < 0.0 ? 0.0 : ms);
  if (samples_.size() < static_cast<size_t>(options_.epoch_samples)) return;

  // Close the epoch: exact p99 by selection (the buffer is small).
  const size_t rank =
      std::min(samples_.size() - 1,
               static_cast<size_t>(0.99 * static_cast<double>(samples_.size())));
  std::nth_element(samples_.begin(), samples_.begin() + rank, samples_.end());
  const double p99 = samples_[rank];
  samples_.clear();
  last_p99_ms_ = p99;
  epochs_.fetch_add(1, std::memory_order_relaxed);

  const int64_t cur = rows_.load(std::memory_order_relaxed);
  int64_t next = cur;
  if (p99 > options_.p99_budget_ms) {
    next = std::max(options_.min_rows, cur / 2);
  } else if (p99 < options_.regrow_headroom * options_.p99_budget_ms) {
    next = std::min(options_.max_rows, cur * 2);
  }
  if (next != cur) rows_.store(next, std::memory_order_relaxed);
}

double AdaptiveBatchLimiter::last_p99_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_p99_ms_;
}

}  // namespace poe

// ServeStats: the extended metrics surface of the serving runtime.
// Populated by ModelQueryService (cache + latency half) and by
// InferenceServer (adds the queue/batching half on top).
#ifndef POE_SERVE_METRICS_H_
#define POE_SERVE_METRICS_H_

#include <cstdint>
#include <vector>

#include "core/task_model.h"

namespace poe {

/// Per-shard cache counters (hit rate per shard is the load-balance
/// diagnostic: a hot shard shows up as one row with all the traffic).
struct CacheShardStats {
  int64_t hits = 0;
  int64_t misses = 0;     ///< assemblies this shard led
  int64_t coalesced = 0;  ///< misses that waited on another thread's assembly
  int64_t evictions = 0;
  /// Entries dropped because their value no longer validates (stale pool
  /// generation): the swap-time sweep plus any stale hit caught by the
  /// validate hook. Disjoint from `evictions` (capacity pressure).
  int64_t invalidated = 0;
  int64_t size = 0;       ///< resident entries now
  /// Σ value_bytes over resident entries — the bytes this shard's
  /// composites would occupy if each were a private copy. The expert
  /// store's referenced bytes are the deduplicated truth; the difference
  /// is the sharing saving.
  int64_t resident_bytes = 0;

  int64_t lookups() const { return hits + misses + coalesced; }
  double hit_rate() const {
    const int64_t n = lookups();
    return n > 0 ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
  }
};

/// Aggregate serving metrics. Counter identity (enforced by tests):
///   queries == cache_hits + cache_misses + coalesced
/// and for a drained server:
///   submitted == completed + rejected + deadline_expired
/// (+ queue_depth on a live one; requests inside an in-flight batch are
/// in none of the buckets until their futures resolve, so the live
/// identity can lag by up to num_workers * max_batch_rows requests).
/// Every bucket is terminal and disjoint: a request that expired after
/// admission counts ONLY in deadline_expired, never in completed.
struct ServeStats {
  // --- query/cache side (ModelQueryService) ---
  int64_t queries = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;  ///< led an assembly
  int64_t coalesced = 0;     ///< waited on an in-flight assembly of the key
  double p50_ms = 0.0;       ///< end-to-end Query() latency percentiles
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double avg_ms = 0.0;
  double qps = 0.0;  ///< trailing-window query rate
  std::vector<CacheShardStats> shards;
  ServingPrecision precision = ServingPrecision::kFloat32;
  int64_t pool_bytes = 0;

  // --- pool-generation side (VersionedPool; reconcile by construction:
  //     generation == 1 + generations_swapped, and cache_keys_invalidated
  //     == Σ shards[i].invalidated — both sides of each identity are
  //     derived from the same underlying state, never counted twice) ---
  /// Generation currently serving (the first pool is generation 1;
  /// 0 only on a stats() default object).
  uint64_t generation = 0;
  /// Successful VersionedPool::Swap calls (no-op upgrades included: they
  /// still publish a new generation id).
  int64_t generations_swapped = 0;
  /// Cache entries dropped across all swaps because their expert set
  /// changed between generations — the swap-time sweep plus stale hits
  /// caught by the validate hook. Unchanged composites are NOT in here;
  /// they keep hitting across swaps.
  int64_t cache_keys_invalidated = 0;
  /// Requests that pinned a generation other than the one that served
  /// them (telemetry, not an error: serving always answers from the
  /// current generation and the response reports which one).
  int64_t stale_generation_queries = 0;

  // --- expert-granularity sharing (ExpertStore; see its stats struct) ---
  int64_t expert_hits = 0;    ///< branch acquires served by a live branch
  int64_t expert_misses = 0;  ///< branch materializations
  /// Cumulative bytes that per-composite weight copies would have
  /// materialized but sharing did not (Σ expert bytes over all hits).
  int64_t shared_bytes_saved = 0;
  int64_t experts_referenced = 0;       ///< distinct experts live now
  int64_t referenced_expert_bytes = 0;  ///< their deduplicated bytes
  int64_t trunk_bytes = 0;              ///< shared library component bytes
  /// Experts whose materialization hit permanent corruption (acquires of
  /// them fail fast with kUnavailable; other experts are unaffected).
  int64_t experts_poisoned = 0;
  /// Experts still serving f32 under an int8 pool (failed conversion).
  int64_t experts_degraded = 0;
  /// Σ StateBytes over cache-resident models: what model-granularity
  /// accounting would charge. Compare against
  /// trunk_bytes + referenced_expert_bytes (the deduplicated footprint).
  int64_t resident_model_bytes = 0;

  // --- request-queue side (InferenceServer; zero on a bare service) ---
  int64_t submitted = 0;
  /// Refused at submission without processing: queue full (backpressure),
  /// malformed input, or server shut down.
  int64_t rejected = 0;
  int64_t completed = 0;
  int64_t batches = 0;            ///< fused forward passes executed
  int64_t batched_requests = 0;   ///< requests served by those passes
  int64_t queue_depth = 0;        ///< pending now
  /// Cross-model trunk reuse: batches whose rows spanned ≥ 2 distinct
  /// models but shared ONE library-trunk forward, and the rows that rode
  /// those fused trunk passes.
  int64_t trunk_fused_batches = 0;
  int64_t trunk_fused_rows = 0;
  /// The batch-row cap in effect NOW: the configured max_batch_rows, or
  /// the adaptive limiter's current value when adaptive batching is on.
  int64_t batch_rows_cap = 0;

  // --- robustness side ---
  /// Admitted requests shed because their deadline passed before (or
  /// while) a batch would have run them. The forward pass is never spent
  /// on an expired request.
  int64_t deadline_expired = 0;
  /// Backoff retries taken inside task-model assembly (pool- and
  /// service-level transient-failure retries combined).
  int64_t assembly_retries = 0;
  /// Queries answered by a model with at least one degraded (f32-under-
  /// int8) branch or a degraded trunk.
  int64_t degraded_queries = 0;

  // --- cluster side (ClusterNode; all zero on a single-node server).
  //     Identities, enforced by the cluster tests:
  //       remote_fetch_requests == remote_fetch_ok + remote_fetch_failed
  //     (every fetch attempt terminates in exactly one bucket) and
  //       remote_fetch_replica <= remote_fetch_ok. ---
  /// Membership epoch of this node's view (1 at cluster start; every
  /// accepted transition/merge that changes the view advances it).
  uint64_t cluster_epoch = 0;
  /// Experts this node keeps non-resident (owned by peers).
  int64_t experts_nonresident = 0;
  /// Remote materialization attempts (one per Acquire that found no
  /// resident master; the pool's per-expert retry re-enters here).
  int64_t remote_fetch_requests = 0;
  /// Fetches that produced a module — from any owner.
  int64_t remote_fetch_ok = 0;
  /// Subset of remote_fetch_ok answered by a non-primary owner (the
  /// primary was down or refused).
  int64_t remote_fetch_replica = 0;
  /// Fetches that exhausted every owner; the acquire fails kUnavailable
  /// and the query serves degraded or errors within the whitelist.
  int64_t remote_fetch_failed = 0;
  /// Fetch-expert RPCs this node answered with a module.
  int64_t peer_fetches_served = 0;
  /// Membership views adopted from peers (strictly newer epoch, or the
  /// deterministic equal-epoch tie-break).
  int64_t gossip_merges = 0;
  /// Pings this node sent / pings that failed (feeds failure detection).
  int64_t pings_sent = 0;
  int64_t ping_failures = 0;

  /// Average requests per fused forward pass (row counts per pass are
  /// reported per-response as InferenceResponse::batch_rows).
  double avg_batch() const {
    return batches > 0 ? static_cast<double>(batched_requests) /
                             static_cast<double>(batches)
                       : 0.0;
  }
  double overall_hit_rate() const {
    return queries > 0
               ? static_cast<double>(cache_hits) / static_cast<double>(queries)
               : 0.0;
  }
  /// Bytes the resident composites would occupy as private copies minus
  /// the deduplicated footprint they actually share. Can dip below the
  /// naive difference when clients hold evicted models (their experts
  /// stay referenced without a resident composite charging for them).
  int64_t resident_dedup_saved_bytes() const {
    const int64_t deduped = trunk_bytes + referenced_expert_bytes;
    return resident_model_bytes > deduped ? resident_model_bytes - deduped
                                          : 0;
  }
};

}  // namespace poe

#endif  // POE_SERVE_METRICS_H_

// Sharded, single-flight LRU cache for assembled task models - the
// buffer-pool-manager idiom applied to the serving path: the key space is
// hash-partitioned over independently locked shards, so queries for
// different composite tasks never contend on one mutex, and the expensive
// operation (pool assembly) always runs OUTSIDE every shard lock.
//
// Single flight: concurrent misses on the SAME key elect one leader that
// assembles while the rest wait on the flight's condition variable; misses
// on different keys assemble fully in parallel. Failed assemblies are
// delivered to every waiter but never cached.
//
// Capacity is a GLOBAL bound (like the pre-shard LRU, so eviction order is
// observable and testable): insertion past capacity evicts the tail with
// the oldest access stamp across all shards. Finding the victim scans one
// tail per shard - O(num_shards), off the hit path, and only on insert.
//
// The cache is a template over the cached value so tests can drive the
// concurrency machinery with cheap values; the serving runtime uses the
// `ShardedModelCache` instantiation below.
#ifndef POE_SERVE_MODEL_CACHE_H_
#define POE_SERVE_MODEL_CACHE_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/task_model.h"
#include "serve/metrics.h"
#include "util/result.h"

namespace poe {

/// The canonical form of a composite-task key: sorted + deduplicated.
/// Both the service cache and the server's batch grouping MUST use this
/// one helper - coalescing is only correct while their keys agree.
inline std::vector<int> CanonicalTaskKey(const std::vector<int>& task_ids) {
  std::vector<int> key = task_ids;
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  return key;
}

/// FNV-1a over the ints of a canonical (sorted, deduplicated) key.
struct TaskKeyHash {
  size_t operator()(const std::vector<int>& key) const {
    uint64_t h = 1469598103934665603ull;
    for (int v : key) {
      for (int b = 0; b < 4; ++b) {
        h ^= static_cast<uint64_t>((v >> (8 * b)) & 0xff);
        h *= 1099511628211ull;
      }
    }
    return static_cast<size_t>(h);
  }
};

template <typename V>
class ShardedFlightCache {
 public:
  using Key = std::vector<int>;
  /// Assembles the value for a missing key. Always invoked with no shard
  /// lock held; may run concurrently for different keys, never for the
  /// same key.
  using AssembleFn = std::function<Result<V>(const Key&)>;

  struct Options {
    size_t capacity = 64;  ///< total entries across shards; 0 = no caching
    int num_shards = 8;
    /// Optional byte accounting: sized at insert, credited at eviction,
    /// reported per shard as CacheShardStats::resident_bytes. The serving
    /// layer passes TaskModel::StateBytes here — the PRIVATE-copy cost of
    /// a composite — and reconciles it against the expert store's
    /// deduplicated bytes to report what sharing saved.
    std::function<int64_t(const V&)> value_bytes;
    /// Optional staleness check, run on every would-be hit: return false
    /// and the entry is dropped (counted into CacheShardStats::invalidated)
    /// and the lookup proceeds as a miss. This closes the swap/insert race
    /// that a one-shot sweep (EraseMatching) cannot: an assembly that was
    /// in flight across a pool-generation swap inserts a stale model AFTER
    /// the sweep ran, and this hook catches it on its first hit. Must be
    /// cheap — it runs under the shard lock.
    std::function<bool(const Key&, const V&)> validate;
  };

  explicit ShardedFlightCache(Options options) : options_(options) {
    if (options_.num_shards < 1) options_.num_shards = 1;
    shards_ = std::make_unique<Shard[]>(options_.num_shards);
  }

  /// Returns the cached value for `key` or assembles it via `assemble`
  /// (single-flight). `hit`/`coalesced` (optional) report how this lookup
  /// was served: cache hit, wait on another thread's in-flight assembly,
  /// or (neither set) a led assembly.
  Result<V> GetOrAssemble(const Key& key, const AssembleFn& assemble,
                          bool* hit = nullptr, bool* coalesced = nullptr) {
    if (hit != nullptr) *hit = false;
    if (coalesced != nullptr) *coalesced = false;
    if (options_.capacity == 0) {
      // Cache disabled: count the traffic, assemble every time.
      Shard& shard = ShardFor(key);
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.stats.misses++;
      }
      return assemble(key);
    }

    Shard& shard = ShardFor(key);
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        if (options_.validate && !options_.validate(key, it->second->value)) {
          // Stale entry (assembled against a superseded pool generation):
          // drop it and fall through to the miss/flight path below.
          shard.stats.resident_bytes -= it->second->bytes;
          shard.lru.erase(it->second);
          shard.index.erase(it);
          shard.stats.invalidated++;
          size_.fetch_sub(1, std::memory_order_relaxed);
        } else {
          shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
          shard.lru.front().stamp =
              clock_.fetch_add(1, std::memory_order_relaxed) + 1;
          shard.stats.hits++;
          if (hit != nullptr) *hit = true;
          return shard.lru.front().value;
        }
      }
      auto in = shard.inflight.find(key);
      if (in != shard.inflight.end()) {
        flight = in->second;
        shard.stats.coalesced++;
        if (coalesced != nullptr) *coalesced = true;
      } else {
        flight = std::make_shared<Flight>();
        shard.inflight.emplace(key, flight);
        shard.stats.misses++;
        leader = true;
      }
    }

    if (!leader) {
      // Wait for the leader's assembly; no shard lock is held here, so
      // other keys in this shard keep hitting/assembling meanwhile.
      std::unique_lock<std::mutex> fl(flight->mu);
      flight->cv.wait(fl, [&flight] { return flight->done; });
      if (!flight->status.ok()) return flight->status;
      return *flight->value;
    }

    // The leader must ALWAYS retire the flight - an escaped exception
    // would leave every future miss on this key waiting forever - so a
    // throwing assemble (this codebase is Status-based, but e.g.
    // bad_alloc can still surface) degrades to an error result.
    Result<V> result = [&]() -> Result<V> {
      try {
        return assemble(key);
      } catch (const std::exception& e) {
        return Status::Internal(std::string("assembly threw: ") + e.what());
      } catch (...) {
        return Status::Internal("assembly threw a non-std exception");
      }
    }();

    // Size the value OUTSIDE the shard lock (value_bytes may walk a whole
    // module tree; hits on this shard must not stall behind it).
    const int64_t bytes =
        result.ok() && options_.value_bytes
            ? options_.value_bytes(result.ValueOrDie())
            : 0;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.inflight.erase(key);
      if (result.ok()) {
        shard.lru.emplace_front(
            Entry{key, result.ValueOrDie(),
                  clock_.fetch_add(1, std::memory_order_relaxed) + 1, bytes});
        shard.index[key] = shard.lru.begin();
        shard.stats.resident_bytes += bytes;
        size_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    {
      std::lock_guard<std::mutex> fl(flight->mu);
      flight->done = true;
      if (result.ok()) {
        flight->value = result.ValueOrDie();
      } else {
        flight->status = result.status();
      }
    }
    flight->cv.notify_all();

    if (result.ok()) EvictOverCapacity();
    return result;
  }

  /// Drops every resident entry for which `pred(key, value)` is true,
  /// counting each into its shard's `invalidated`. Returns how many were
  /// dropped. The pool-generation swap runs this with "expert set changed
  /// between generations" as the predicate, so unchanged composites keep
  /// hitting. In-flight assemblies are untouched — their insert may land
  /// after this sweep, which is exactly what Options::validate catches.
  size_t EraseMatching(const std::function<bool(const Key&, const V&)>& pred) {
    size_t erased = 0;
    for (int s = 0; s < options_.num_shards; ++s) {
      Shard& shard = shards_[s];
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.lru.begin(); it != shard.lru.end();) {
        if (pred(it->key, it->value)) {
          shard.stats.resident_bytes -= it->bytes;
          shard.index.erase(it->key);
          it = shard.lru.erase(it);
          shard.stats.invalidated++;
          size_.fetch_sub(1, std::memory_order_relaxed);
          ++erased;
        } else {
          ++it;
        }
      }
    }
    return erased;
  }

  /// Resident entries across all shards.
  size_t size() const {
    const int64_t n = size_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<size_t>(n) : 0;
  }

  size_t capacity() const { return options_.capacity; }
  int num_shards() const { return options_.num_shards; }

  /// Per-shard counters; `size` is sampled under each shard's lock, so
  /// the vector is internally consistent with the LRU lists.
  std::vector<CacheShardStats> ShardStats() const {
    std::vector<CacheShardStats> out(options_.num_shards);
    for (int s = 0; s < options_.num_shards; ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mu);
      out[s] = shards_[s].stats;
      out[s].size = static_cast<int64_t>(shards_[s].lru.size());
    }
    return out;
  }

 private:
  struct Entry {
    Key key;
    V value;
    uint64_t stamp;  ///< global access clock at last touch
    int64_t bytes;   ///< value_bytes at insert (0 when accounting is off)
  };

  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;  // non-OK when the leader's assembly failed
    std::optional<V> value;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, typename std::list<Entry>::iterator, TaskKeyHash>
        index;
    std::unordered_map<Key, std::shared_ptr<Flight>, TaskKeyHash> inflight;
    CacheShardStats stats;
  };

  Shard& ShardFor(const Key& key) const {
    return shards_[TaskKeyHash{}(key) % options_.num_shards];
  }

  /// Evicts globally-least-recently-stamped tails until size <= capacity.
  /// Each evictor first CLAIMS one unit of surplus with a CAS decrement of
  /// the size counter (so racing evictors can never jointly drive the
  /// cache below capacity), then finds a victim: scan one tail per shard,
  /// re-lock the oldest-stamped shard, pop its tail. No two shard locks
  /// are ever held at once; if the chosen shard's tail moved between the
  /// scan and the re-lock, its current tail is evicted instead - a
  /// bounded approximation that guarantees progress.
  void EvictOverCapacity() {
    for (;;) {
      int64_t cur = size_.load(std::memory_order_relaxed);
      if (cur <= static_cast<int64_t>(options_.capacity)) return;
      if (!size_.compare_exchange_weak(cur, cur - 1,
                                       std::memory_order_relaxed)) {
        continue;
      }
      // One surplus claimed; evict exactly one entry for it.
      while (!EvictOneEntry()) {
        // All tails momentarily empty (entries mid-insert); retry - the
        // claim guarantees at least this much surplus exists.
      }
    }
  }

  /// Pops the oldest-stamped tail across shards. Does NOT touch the size
  /// counter - the caller already claimed the unit. False when every
  /// shard was empty at scan time.
  bool EvictOneEntry() {
    int victim = -1;
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (int s = 0; s < options_.num_shards; ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mu);
      if (!shards_[s].lru.empty() && shards_[s].lru.back().stamp < oldest) {
        oldest = shards_[s].lru.back().stamp;
        victim = s;
      }
    }
    if (victim < 0) return false;
    std::lock_guard<std::mutex> lock(shards_[victim].mu);
    Shard& shard = shards_[victim];
    if (shard.lru.empty()) return false;
    shard.index.erase(shard.lru.back().key);
    shard.stats.resident_bytes -= shard.lru.back().bytes;
    shard.lru.pop_back();
    shard.stats.evictions++;
    return true;
  }

  Options options_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> clock_{0};
  std::atomic<int64_t> size_{0};
};

/// The serving instantiation: canonical task-id key -> shared assembled
/// model. Hits hand out the shared_ptr, so a model stays alive for clients
/// that hold it across an eviction.
using ShardedModelCache = ShardedFlightCache<std::shared_ptr<TaskModel>>;

}  // namespace poe

#endif  // POE_SERVE_MODEL_CACHE_H_

// Embeddable, socket-free inference runtime: a bounded MPMC request queue
// feeding worker threads that batch pending requests for the same task
// model into one fused forward pass. Transport (sockets, RPC, ...) is the
// embedder's job; this is the part the paper's AIaaS scenario implies but
// never specifies - admission control, batching, and latency accounting
// between "request arrived" and "logits left".
#ifndef POE_SERVE_INFERENCE_SERVER_H_
#define POE_SERVE_INFERENCE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/query_service.h"
#include "core/request.h"
#include "serve/adaptive_batch.h"
#include "serve/metrics.h"
#include "tensor/tensor.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace poe {

/// One classification request. The server's request shape IS the canonical
/// PoolRequest (core/request.h) — wire decoding, direct service queries,
/// and server submission all build the same struct through the same
/// builder and validation.
///
/// Server semantics of the shared fields: `deadline_ms` <= 0 means no
/// budget; an expired request is SHED, never executed — checked at
/// submission, at dequeue, and again after model assembly (before the
/// forward pass). Shed requests resolve with kDeadlineExceeded and count
/// into ServeStats::deadline_expired, not completed/rejected; the
/// remaining budget also bounds assembly (retry backoff stops at the
/// deadline). `generation`, when nonzero, pins an expected pool
/// generation: answers from any other generation are still delivered
/// (responses say which generation served) but count into
/// ServeStats::stale_generation_queries.
using InferenceRequest = PoolRequest;

/// The response delivered through the future. `status` gates every other
/// field.
struct InferenceResponse {
  Status status;
  Tensor logits;                    ///< [n, |classes(Q)|]
  std::vector<int> global_classes;  ///< logit column -> global class id
  std::vector<int> predictions;     ///< argmax per input row
  double queue_ms = 0.0;   ///< time spent waiting in the request queue
  double total_ms = 0.0;   ///< submit -> response
  int64_t batch_rows = 0;  ///< rows of the fused forward that served this
  /// Precision the answering pool intends (kInt8 after conversion) and
  /// how much of THIS model actually fell back to f32 (degraded mode
  /// after failed conversions). 0 / false on a healthy model.
  ServingPrecision precision = ServingPrecision::kFloat32;
  int degraded_branches = 0;
  bool trunk_degraded = false;
  /// Pool generation of the model that answered (0 only on error paths
  /// that never reached a model). Under a live upgrade, a client that
  /// pinned request.generation compares it against this.
  uint64_t generation = 0;
};

/// Bounded-queue batching server over a ModelQueryService.
///
/// Worker threads pop the oldest request, then greedily absorb every other
/// pending request with the same image geometry up to `max_batch_rows`,
/// and run the concatenated rows through as FEW forward passes as the
/// models allow. Requests for the same canonical task set fuse into one
/// model forward as before; requests for DIFFERENT models still share one
/// library-trunk pass (every model of a pool aliases the same trunk, and
/// trunk rows are independent), then fan out per-model expert heads over
/// their feature-row slices — cross-model batching of the shared library
/// trunk. Batching never waits for more traffic - an empty queue means
/// batch-of-one, so the batch window is simply the time requests naturally
/// spend queued behind the current forward (zero added latency, bigger
/// batches exactly when the system is loaded, which is when they pay).
///
/// Backpressure: Submit() on a full queue fails fast with
/// ResourceExhausted (delivered through the returned future) instead of
/// letting latency grow without bound.
class InferenceServer {
 public:
  struct Options {
    int num_workers = 2;
    size_t queue_capacity = 128;  ///< pending requests before rejection
    int64_t max_batch_rows = 64;  ///< rows fused into one forward pass
    /// Fuse the shared-trunk forward across requests for different
    /// models (same geometry). Off = pre-trunk-reuse behavior: only
    /// same-model requests coalesce into a batch. Note on int8 serving:
    /// activation scales are per-tensor dynamic, so ANY fused batch
    /// (same-model included, since PR 3) quantizes against the batch's
    /// max-abs — co-batched traffic can shift logits within quant
    /// tolerance; cross-model fusion widens which requests can share a
    /// batch, not the effect. Turn this off (and max_batch_rows = 1)
    /// where bit-stable int8 logits matter more than throughput.
    bool fuse_trunk = true;
    /// Adaptive batch-cap control (see adaptive_batch.h). When enabled
    /// (with a positive p99 budget), max_batch_rows becomes the STARTING
    /// cap and the limiter moves the effective cap with observed latency;
    /// current_max_batch_rows() / ServeStats::batch_rows_cap report it.
    AdaptiveBatchOptions adaptive;
    /// Generation-aware admission. 0 (default) = off: a stale generation
    /// pin is telemetry only (stale_generation_queries). > 0 = a request
    /// pinning generation g is REJECTED with FailedPrecondition when the
    /// serving generation N has moved past it by more than this many
    /// swaps (N - g > max_generation_lag) — clients that old must refresh
    /// their view instead of silently being answered by a pool they no
    /// longer expect. Unpinned requests (generation == 0) and pins at or
    /// ahead of N are never lag-rejected.
    uint64_t max_generation_lag = 0;
  };

  /// `service` must outlive the server (the server adds batching and
  /// admission control; model caching/assembly stays in the service).
  InferenceServer(ModelQueryService* service, Options options);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues a request. The future is always valid; rejection (queue
  /// full, bad input shape, server shut down) is a ready future whose
  /// response carries the error status.
  std::future<InferenceResponse> Submit(InferenceRequest request);

  /// Callback form of Submit for embedders that must not block a thread
  /// per request (event-loop transports). `done` is invoked EXACTLY once
  /// for every call — inline (on the caller's thread) for requests
  /// rejected at submission, otherwise on whichever worker thread
  /// resolves the request. The callback must not block for long and must
  /// not call Shutdown() (a worker cannot join itself); Submit/stats/
  /// queue_depth from inside it are fine.
  void SubmitAsync(InferenceRequest request,
                   std::function<void(InferenceResponse)> done);

  /// Stops accepting new requests, drains everything already queued, and
  /// joins the workers. Idempotent; also run by the destructor.
  void Shutdown();

  /// Full metrics: the underlying service's cache/latency view plus this
  /// server's queue/batching counters. Latency percentiles here are
  /// end-to-end (queue wait + assembly + forward).
  ServeStats stats() const;

  size_t queue_depth() const;

  /// The batch-row cap in effect now (== options.max_batch_rows unless
  /// adaptive batching is enabled and has moved it).
  int64_t current_max_batch_rows() const {
    return limiter_ ? limiter_->rows() : options_.max_batch_rows;
  }

  /// The adaptive limiter, or nullptr when adaptive batching is off.
  /// Exposed for tests/telemetry; the limiter itself is thread-safe.
  const AdaptiveBatchLimiter* batch_limiter() const { return limiter_.get(); }

 private:
  struct Pending {
    std::vector<int> key;  ///< canonical (sorted, deduped) task ids
    InferenceRequest request;
    std::promise<InferenceResponse> promise;
    /// Set only for SubmitAsync requests; then the promise is inert.
    std::function<void(InferenceResponse)> callback;
    Stopwatch submitted;
    Deadline deadline;  ///< unlimited when the request set no budget
  };

  /// Shared tail of Submit/SubmitAsync: validate, stamp the deadline,
  /// admit or reject. Counters move before the pending resolves.
  void Enqueue(InferenceRequest request, Pending pending);

  /// Resolves a pending exactly once (callback or promise). Returns
  /// false when the promise was already satisfied (the double-resolve
  /// guard of the exception path).
  static bool Resolve(Pending& pending, InferenceResponse response);

  void WorkerLoop();
  /// Exception-guarded: every member promise is resolved even if the
  /// batch body throws (no hung futures, ever).
  void ServeBatch(std::vector<Pending> batch);
  void ServeBatchImpl(std::vector<Pending>& batch);

  ModelQueryService* service_;
  Options options_;
  std::unique_ptr<AdaptiveBatchLimiter> limiter_;  ///< null = fixed cap

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool shutdown_ = false;
  std::mutex shutdown_mu_;  ///< serializes Shutdown() callers; guards workers_
  std::vector<std::thread> workers_;

  LatencyHistogram latency_;
  QpsWindow qps_;
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> deadline_expired_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> batched_requests_{0};
  std::atomic<int64_t> trunk_fused_batches_{0};
  std::atomic<int64_t> trunk_fused_rows_{0};
};

}  // namespace poe

#endif  // POE_SERVE_INFERENCE_SERVER_H_

// Adaptive batch-cap control: derive InferenceServer's max_batch_rows
// from the live end-to-end latency distribution instead of a fixed
// constant. Bigger batches buy throughput until the fused forward itself
// becomes the latency floor; the limiter watches p99 over fixed-size
// sample epochs and walks the cap down when the configured budget is
// blown, back up when there is comfortable headroom.
//
// Control law (multiplicative-increase/multiplicative-decrease, the same
// shape TCP congestion control uses for the same reason - fast reaction
// to overload, geometric probing toward headroom):
//   epoch p99 >  p99_budget_ms            -> rows = max(min_rows, rows/2)
//   epoch p99 <  regrow_headroom * budget -> rows = min(max_rows, rows*2)
// Epochs are EXACT percentiles over the last `epoch_samples` completions
// (nth_element over a small buffer), not the cumulative histogram - a
// cumulative p99 is sticky and would never recover after one bad burst.
#ifndef POE_SERVE_ADAPTIVE_BATCH_H_
#define POE_SERVE_ADAPTIVE_BATCH_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace poe {

struct AdaptiveBatchOptions {
  /// Off by default: the server uses its fixed max_batch_rows.
  bool enabled = false;
  /// The p99 latency the server should stay under, in milliseconds.
  /// Required > 0 when enabled.
  double p99_budget_ms = 0.0;
  /// The cap never shrinks below this (a floor of 1 = batch-of-one).
  int64_t min_rows = 1;
  /// The cap never grows above this; 0 = inherit the server's
  /// max_batch_rows (which is also the starting cap).
  int64_t max_rows = 0;
  /// Completions per control epoch. Smaller = faster reaction, noisier
  /// p99 estimate.
  int epoch_samples = 64;
  /// Regrow when epoch p99 < regrow_headroom * p99_budget_ms. The dead
  /// band between headroom and budget keeps the cap from oscillating on
  /// workloads that sit near the budget.
  double regrow_headroom = 0.5;
};

/// Thread-safe: Record() is called from every server worker; rows() is a
/// relaxed atomic load on the batch-assembly path.
class AdaptiveBatchLimiter {
 public:
  /// `initial_rows` seeds the cap (the server's configured
  /// max_batch_rows); options are sanitized (min >= 1, max >= min).
  AdaptiveBatchLimiter(const AdaptiveBatchOptions& options,
                       int64_t initial_rows);

  /// Feeds one end-to-end latency sample; every epoch_samples-th call
  /// closes the epoch and moves the cap.
  void Record(double ms);

  /// The current batch-row cap.
  int64_t rows() const { return rows_.load(std::memory_order_relaxed); }

  /// Control epochs completed so far.
  int64_t epochs() const { return epochs_.load(std::memory_order_relaxed); }

  /// The p99 of the last closed epoch (0 before the first).
  double last_p99_ms() const;

 private:
  AdaptiveBatchOptions options_;
  std::atomic<int64_t> rows_;
  std::atomic<int64_t> epochs_{0};

  mutable std::mutex mu_;        ///< guards samples_ and last_p99_ms_
  std::vector<double> samples_;  ///< current epoch, cleared at close
  double last_p99_ms_ = 0.0;
};

}  // namespace poe

#endif  // POE_SERVE_ADAPTIVE_BATCH_H_

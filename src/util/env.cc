#include "util/env.h"

#include <cstdlib>

namespace poe {

std::string GetEnvOr(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return v;
}

int GetEnvIntOr(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<int>(parsed);
}

double GetEnvDoubleOr(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

}  // namespace poe

#include "util/status.h"

namespace poe {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace poe

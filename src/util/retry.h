// Deadline tracking and bounded retry with exponential backoff.
//
// A Deadline is an absolute point on the steady clock (or "unlimited").
// It is plumbed from InferenceServer::Submit down through task-model
// assembly so every layer can stop doing work the caller no longer wants.
//
// RetryWithBackoff wraps a fallible operation and retries *transient*
// failures (kUnavailable, kIoError, kResourceExhausted) up to
// policy.max_attempts total attempts, sleeping an exponentially growing
// backoff between attempts, capped by both policy.max_backoff_ms and the
// remaining deadline budget. Permanent errors (kCorruption,
// kInvalidArgument, ...) are returned immediately - retrying them would
// only mask bugs and burn the deadline.
#ifndef POE_UTIL_RETRY_H_
#define POE_UTIL_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>
#include <type_traits>

#include "util/result.h"
#include "util/status.h"

namespace poe {

/// An absolute wall-clock budget on the steady clock. Default-constructed
/// deadlines are unlimited (never expire); AfterMillis builds a real one.
/// Copies share the same absolute expiry, so a Deadline can be handed down
/// through queueing and assembly layers without drift.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited: expired() is always false, remaining_ms() is +infinity.
  Deadline() = default;

  /// A deadline `budget_ms` from now. Non-positive budgets produce an
  /// already-expired deadline (useful for "fail fast" tests).
  static Deadline AfterMillis(double budget_ms) {
    Deadline d;
    d.unlimited_ = false;
    d.expiry_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       budget_ms));
    return d;
  }

  bool unlimited() const { return unlimited_; }

  bool expired() const {
    return !unlimited_ && Clock::now() >= expiry_;
  }

  /// Milliseconds until expiry; +infinity when unlimited, never negative.
  double remaining_ms() const {
    if (unlimited_) return std::numeric_limits<double>::infinity();
    const auto left = std::chrono::duration<double, std::milli>(
        expiry_ - Clock::now());
    return std::max(0.0, left.count());
  }

 private:
  bool unlimited_ = true;
  Clock::time_point expiry_{};
};

/// Bounds for RetryWithBackoff. The defaults suit in-process transient
/// failures (a briefly contended expert slot, an injected outage): three
/// total attempts, sub-millisecond first backoff, 2x growth.
struct RetryPolicy {
  int max_attempts = 3;            ///< total attempts, including the first
  double initial_backoff_ms = 0.5; ///< sleep before the first retry
  double multiplier = 2.0;         ///< backoff growth per retry
  double max_backoff_ms = 8.0;     ///< per-sleep cap
};

/// True for errors worth retrying: the operation might succeed if repeated.
inline bool IsTransient(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kIoError ||
         s.code() == StatusCode::kResourceExhausted;
}

namespace retry_internal {

inline const Status& AsStatus(const Status& s) { return s; }
template <typename T>
const Status& AsStatus(const Result<T>& r) {
  return r.status();
}

}  // namespace retry_internal

/// Runs `fn` (returning Status or Result<T>) with bounded retries.
///
/// - Non-transient errors and successes return immediately.
/// - Transient errors retry up to policy.max_attempts total attempts with
///   exponential backoff; each completed retry increments *retries when
///   `retries` is non-null (callers feed this into ServeStats).
/// - The deadline is honored twice per cycle: an attempt never *starts*
///   expired, and a backoff sleep is capped at the remaining budget. On
///   expiry the result is DeadlineExceeded carrying the last real error,
///   so callers can still see what kept failing.
template <typename Fn>
auto RetryWithBackoff(const RetryPolicy& policy, const Deadline& deadline,
                      Fn&& fn, int64_t* retries = nullptr)
    -> decltype(fn()) {
  double backoff_ms = policy.initial_backoff_ms;
  const int attempts = std::max(1, policy.max_attempts);
  std::string last_error;
  for (int attempt = 1;; ++attempt) {
    if (deadline.expired()) {
      return Status::DeadlineExceeded(
          "deadline expired before attempt " + std::to_string(attempt) +
          (last_error.empty() ? "" : "; last: " + last_error));
    }
    auto result = fn();
    const Status& status = retry_internal::AsStatus(result);
    if (status.ok() || !IsTransient(status) || attempt >= attempts) {
      return result;
    }
    last_error = status.ToString();
    const double sleep_ms =
        std::min({backoff_ms, policy.max_backoff_ms, deadline.remaining_ms()});
    if (deadline.expired()) {
      return Status::DeadlineExceeded("deadline expired during retries; last: " +
                                      status.ToString());
    }
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
    }
    backoff_ms *= policy.multiplier;
    if (retries != nullptr) ++*retries;
  }
}

}  // namespace poe

#endif  // POE_UTIL_RETRY_H_

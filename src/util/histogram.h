// Lock-free latency metrics for the serving runtime: a fixed-bucket
// geometric histogram (percentiles without storing samples) and a trailing
// QPS window. Both are safe to Record() from any number of threads.
#ifndef POE_UTIL_HISTOGRAM_H_
#define POE_UTIL_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace poe {

/// Bucket count shared by LatencyHistogram and its snapshots.
constexpr int kLatencyHistogramBuckets = 64;

/// A plain-data copy of a histogram taken at one point in time. All
/// derived statistics (percentiles, averages) of a multi-threaded
/// histogram should be computed on ONE snapshot: reading the live atomics
/// per-statistic would interleave with concurrent Record() calls and the
/// numbers would not describe any single state. Snapshots also merge, so
/// per-worker (or per-connection) histograms aggregate into one
/// distribution without stopping the workers.
struct HistogramSnapshot {
  std::array<int64_t, kLatencyHistogramBuckets> buckets{};
  int64_t count = 0;  ///< always == sum over buckets
  int64_t sum_ns = 0;
  int64_t max_ns = 0;

  /// Value at quantile `p` in [0, 1], linearly interpolated within the
  /// covering bucket. 0 when empty.
  double Percentile(double p) const;

  /// Adds another snapshot's samples into this one.
  void Merge(const HistogramSnapshot& other);

  double sum_ms() const { return static_cast<double>(sum_ns) * 1e-6; }
  double max_ms() const { return static_cast<double>(max_ns) * 1e-6; }
  double avg_ms() const {
    return count > 0 ? sum_ms() / static_cast<double>(count) : 0.0;
  }
};

/// Fixed-bucket latency histogram. Buckets are geometric from 1us to ~160s
/// (factor 1.35 between bounds), so any latency this system can produce
/// lands in a bucket with <= 35% relative width; percentile queries
/// interpolate linearly inside the bucket. Record() is two relaxed atomic
/// adds plus a CAS-maxed maximum - no locks, no allocation.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = kLatencyHistogramBuckets;

  LatencyHistogram();

  /// Records one sample. Negative samples clamp to zero.
  void Record(double ms);

  /// One consistent copy of the current state. The snapshot's count is
  /// recomputed as the sum over its bucket copies, so percentile walks
  /// over the snapshot are internally consistent even while other
  /// threads keep recording.
  HistogramSnapshot snapshot() const;

  /// Value at quantile `p` in [0, 1] (taken over a fresh snapshot; for
  /// several percentiles of one state, take snapshot() once and query
  /// it). 0 when empty.
  double Percentile(double p) const { return snapshot().Percentile(p); }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_ms() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) *
           1e-6;
  }
  double max_ms() const {
    return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) *
           1e-6;
  }
  double avg_ms() const {
    const int64_t n = count();
    return n > 0 ? sum_ms() / static_cast<double>(n) : 0.0;
  }

  /// Upper bound (ms) of bucket `i` - exposed for tests. Bounds are a
  /// process-wide constant shared by snapshots.
  static double bucket_upper_ms(int i);

 private:
  int BucketIndex(double ms) const;

  std::array<std::atomic<int64_t>, kNumBuckets> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_ns_{0};
  std::atomic<int64_t> max_ns_{0};
};

/// Trailing-window queries-per-second gauge: a ring of per-second counters
/// stamped with their absolute second, summed over the last `window`
/// seconds at read time. Slot recycling is a benign race (a burst racing a
/// slot reset can drop a few events from the gauge - it is a gauge, not an
/// accounting counter; use ServeStats' int64 counters for reconciliation).
class QpsWindow {
 public:
  explicit QpsWindow(int window_seconds = 10);

  /// Counts one event at the current time.
  void Record();

  /// Events per second over the trailing window. The denominator is the
  /// observed uptime when the gauge is younger than the window, so early
  /// reads are not diluted by seconds that never happened.
  double Rate() const;

 private:
  static constexpr int kSlots = 64;  // > any sane window_seconds

  struct Slot {
    std::atomic<int64_t> second{-1};
    std::atomic<int64_t> count{0};
  };

  int64_t NowSeconds() const;
  double NowExact() const;

  int window_seconds_;
  int64_t t0_ns_;
  std::array<Slot, kSlots> slots_;
};

}  // namespace poe

#endif  // POE_UTIL_HISTOGRAM_H_

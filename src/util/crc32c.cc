#include "util/crc32c.h"

namespace poe {

namespace {

// Byte-at-a-time table for the reflected Castagnoli polynomial, built once
// at first use. Throughput is irrelevant here (checksums run at pool
// save/load, not on the serving hot path); portability and zero global
// init order issues are what matter.
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  static const Crc32cTable table;
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table.entries[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace poe

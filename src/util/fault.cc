#include "util/fault.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace poe {

namespace {

enum class FaultKind {
  kIoError,
  kCorruption,
  kUnavailable,
  kAllocFail,
  kDeadline,
  kDelay,
};

enum class TriggerMode { kAlways, kProb, kNth, kOnce, kAfter };

struct SiteConfig {
  FaultKind kind = FaultKind::kIoError;
  double delay_ms = 0.0;  // kDelay only
  TriggerMode mode = TriggerMode::kAlways;
  double probability = 0.0;  // kProb
  int64_t count = 0;         // kNth / kOnce / kAfter
  uint64_t rng_state = 0;    // per-site splitmix64 stream (kProb)
};

struct SiteState {
  SiteConfig config;
  bool armed = false;
  int64_t hits = 0;
  int64_t triggers = 0;
};

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t HashSiteName(const std::string& site) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : site) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

// Strict numeric parsing: the whole token must be the number. atof-style
// leniency ("prob:nope" -> 0.0) would silently arm a no-op fault and fake
// a green fault-injection run.
bool ParseDoubleToken(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

bool ParseCountToken(const std::string& token, int64_t* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(token.c_str(), &end, 10);
  return end == token.c_str() + token.size();
}

Status ParseSiteSpec(const std::string& site, const std::string& rhs,
                     uint64_t seed, SiteConfig* out) {
  const std::vector<std::string> tokens = SplitOn(rhs, ':');
  size_t i = 0;
  auto next = [&]() -> const std::string* {
    return i < tokens.size() ? &tokens[i++] : nullptr;
  };

  const std::string* kind = next();
  if (kind == nullptr || kind->empty()) {
    return Status::InvalidArgument("fault spec for '" + site +
                                   "' is missing a kind");
  }
  if (*kind == "io") {
    out->kind = FaultKind::kIoError;
  } else if (*kind == "corrupt") {
    out->kind = FaultKind::kCorruption;
  } else if (*kind == "unavail") {
    out->kind = FaultKind::kUnavailable;
  } else if (*kind == "alloc") {
    out->kind = FaultKind::kAllocFail;
  } else if (*kind == "deadline") {
    out->kind = FaultKind::kDeadline;
  } else if (*kind == "delay") {
    out->kind = FaultKind::kDelay;
    const std::string* ms = next();
    if (ms == nullptr || !ParseDoubleToken(*ms, &out->delay_ms) ||
        out->delay_ms < 0) {
      return Status::InvalidArgument("delay fault at '" + site +
                                     "' needs delay:<ms>");
    }
  } else {
    return Status::InvalidArgument("unknown fault kind '" + *kind +
                                   "' at '" + site + "'");
  }

  const std::string* trigger = next();
  if (trigger == nullptr) {
    return Status::InvalidArgument("fault spec for '" + site +
                                   "' is missing a trigger");
  }
  if (*trigger == "always") {
    out->mode = TriggerMode::kAlways;
  } else if (*trigger == "prob") {
    const std::string* p = next();
    out->mode = TriggerMode::kProb;
    if (p == nullptr || !ParseDoubleToken(*p, &out->probability) ||
        out->probability < 0.0 || out->probability > 1.0) {
      return Status::InvalidArgument("prob trigger at '" + site +
                                     "' needs prob:<p> with p in [0,1]");
    }
  } else if (*trigger == "nth" || *trigger == "once" || *trigger == "after") {
    const std::string* k = next();
    out->mode = *trigger == "nth"
                    ? TriggerMode::kNth
                    : (*trigger == "once" ? TriggerMode::kOnce
                                          : TriggerMode::kAfter);
    if (k == nullptr || !ParseCountToken(*k, &out->count) ||
        out->count < (out->mode == TriggerMode::kAfter ? 0 : 1)) {
      return Status::InvalidArgument(*trigger + " trigger at '" + site +
                                     "' needs a positive :<k>");
    }
  } else {
    return Status::InvalidArgument("unknown trigger '" + *trigger +
                                   "' at '" + site + "'");
  }
  if (i != tokens.size()) {
    return Status::InvalidArgument("trailing tokens in fault spec at '" +
                                   site + "'");
  }
  // Independent deterministic stream per (seed, site): replaying the same
  // spec+seed replays the identical fault schedule, and renaming one site
  // never perturbs another's stream.
  out->rng_state = seed ^ HashSiteName(site);
  return Status::OK();
}

Status MakeInjected(FaultKind kind, const std::string& site) {
  const std::string msg = "injected fault at " + site;
  switch (kind) {
    case FaultKind::kIoError:
      return Status::IoError(msg);
    case FaultKind::kCorruption:
      return Status::Corruption(msg);
    case FaultKind::kUnavailable:
      return Status::Unavailable(msg);
    case FaultKind::kAllocFail:
      return Status::ResourceExhausted(msg);
    case FaultKind::kDeadline:
      return Status::DeadlineExceeded(msg);
    case FaultKind::kDelay:
      return Status::OK();
  }
  return Status::Internal(msg);
}

}  // namespace

struct FaultInjector::Impl {
  mutable std::mutex mu;
  std::map<std::string, SiteState> sites;
  bool env_loaded = false;
};

FaultInjector::Impl* FaultInjector::impl() {
  Impl* existing = impl_.load(std::memory_order_acquire);
  if (existing != nullptr) return existing;
  Impl* fresh = new Impl();
  if (impl_.compare_exchange_strong(existing, fresh,
                                    std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;
  return existing;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = [] {
    auto* injector = new FaultInjector();
    const char* spec = std::getenv("POE_FAULTS");
    if (spec != nullptr && spec[0] != '\0') {
      const char* seed_env = std::getenv("POE_FAULTS_SEED");
      const uint64_t seed =
          seed_env != nullptr ? std::strtoull(seed_env, nullptr, 10) : 42;
      const Status s = injector->Configure(spec, seed);
      if (!s.ok()) {
        // Env config errors must be loud: silently running WITHOUT the
        // requested faults would fake a green fault-injection CI run.
        std::fprintf(stderr, "POE_FAULTS rejected: %s\n",
                     s.ToString().c_str());
        std::abort();
      }
    }
    return injector;
  }();
  return *instance;
}

Status FaultInjector::Configure(const std::string& spec, uint64_t seed) {
  std::map<std::string, SiteState> fresh;
  for (const std::string& entry : SplitOn(spec, ';')) {
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' is not site=kind:trigger");
    }
    const std::string site = entry.substr(0, eq);
    SiteState state;
    state.armed = true;
    POE_RETURN_NOT_OK(
        ParseSiteSpec(site, entry.substr(eq + 1), seed, &state.config));
    fresh[site] = state;
  }
  Impl* i = impl();
  {
    std::lock_guard<std::mutex> lock(i->mu);
    i->sites = std::move(fresh);
    enabled_.store(!i->sites.empty(), std::memory_order_relaxed);
  }
  return Status::OK();
}

void FaultInjector::Clear() {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  i->sites.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

Status FaultInjector::Hit(const char* site) {
  if (!enabled()) return Status::OK();
  Impl* i = impl();
  FaultKind kind;
  double delay_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(i->mu);
    auto it = i->sites.find(site);
    if (it == i->sites.end()) {
      // Unarmed site while the injector is live: count the hit so tests
      // can assert coverage ("control really passed pool.save.sync").
      SiteState& state = i->sites[site];
      state.armed = false;
      state.hits++;
      return Status::OK();
    }
    SiteState& state = it->second;
    state.hits++;
    if (!state.armed) return Status::OK();
    bool fire = false;
    switch (state.config.mode) {
      case TriggerMode::kAlways:
        fire = true;
        break;
      case TriggerMode::kProb: {
        const uint64_t draw = SplitMix64(&state.config.rng_state);
        fire = (draw >> 11) * 0x1.0p-53 < state.config.probability;
        break;
      }
      case TriggerMode::kNth:
        fire = state.hits % state.config.count == 0;
        break;
      case TriggerMode::kOnce:
        fire = state.hits == state.config.count;
        break;
      case TriggerMode::kAfter:
        fire = state.hits > state.config.count;
        break;
    }
    if (!fire) return Status::OK();
    state.triggers++;
    kind = state.config.kind;
    delay_ms = state.config.delay_ms;
  }
  // Sleep OUTSIDE the injector mutex: a delay fault models a slow expert,
  // not a global stall of every other site.
  if (kind == FaultKind::kDelay) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        delay_ms));
  }
  return MakeInjected(kind, site);
}

FaultSiteStats FaultInjector::SiteStats(const std::string& site) const {
  FaultSiteStats out;
  out.site = site;
  Impl* i = const_cast<FaultInjector*>(this)->impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->sites.find(site);
  if (it != i->sites.end()) {
    out.hits = it->second.hits;
    out.triggers = it->second.triggers;
  }
  return out;
}

std::vector<FaultSiteStats> FaultInjector::AllStats() const {
  std::vector<FaultSiteStats> out;
  Impl* i = const_cast<FaultInjector*>(this)->impl();
  std::lock_guard<std::mutex> lock(i->mu);
  for (const auto& [site, state] : i->sites) {
    FaultSiteStats s;
    s.site = site;
    s.hits = state.hits;
    s.triggers = state.triggers;
    out.push_back(std::move(s));
  }
  return out;
}

int64_t FaultInjector::TotalTriggers() const {
  Impl* i = const_cast<FaultInjector*>(this)->impl();
  std::lock_guard<std::mutex> lock(i->mu);
  int64_t total = 0;
  for (const auto& [site, state] : i->sites) total += state.triggers;
  return total;
}

ScopedFaultInjection::ScopedFaultInjection(const std::string& spec,
                                           uint64_t seed) {
  const Status s = FaultInjector::Global().Configure(spec, seed);
  if (!s.ok()) {
    std::fprintf(stderr, "ScopedFaultInjection: %s\n", s.ToString().c_str());
    std::abort();
  }
}

ScopedFaultInjection::~ScopedFaultInjection() {
  FaultInjector::Global().Clear();
}

}  // namespace poe

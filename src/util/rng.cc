#include "util/rng.h"

#include <cmath>

namespace poe {

uint64_t Rng::NextU64() {
  // SplitMix64 (Steele, Lea, Flood 2014).
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::Uniform(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

int64_t Rng::NextInt(int64_t n) {
  // Modulo bias is negligible for n << 2^64.
  return static_cast<int64_t>(NextU64() % static_cast<uint64_t>(n));
}

float Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 1e-12) u1 = NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = static_cast<float>(r * std::sin(theta));
  has_cached_normal_ = true;
  return static_cast<float>(r * std::cos(theta));
}

Rng Rng::Fork() {
  return Rng(NextU64() ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace poe

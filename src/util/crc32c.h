// CRC32C (Castagnoli, polynomial 0x1EDC6F41): the per-section checksum of
// pool file format v3. Chosen over the legacy whole-payload FNV-1a because
// a section granularity needs a checksum with well-understood burst/bit
// error detection, and CRC32C is the storage-stack standard (ext4, btrfs,
// RocksDB, iSCSI). Software table implementation - no ISA dependency, so
// files verify identically on every kernel tier.
#ifndef POE_UTIL_CRC32C_H_
#define POE_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace poe {

/// Extends a running CRC32C with `n` bytes. Pass the previous return value
/// as `crc` to checksum data in chunks; start from 0.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC32C of one contiguous buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

/// Masked CRC in the RocksDB/LevelDB idiom: storing the CRC of data that
/// may itself embed CRCs (our commit footer seals the section CRC list)
/// behaves better when the stored form is not a raw CRC value.
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

}  // namespace poe

#endif  // POE_UTIL_CRC32C_H_

// Wall-clock stopwatch used for learning curves and query latency.
#ifndef POE_UTIL_STOPWATCH_H_
#define POE_UTIL_STOPWATCH_H_

#include <chrono>

namespace poe {

/// Measures elapsed wall-clock time since construction or the last Reset.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace poe

#endif  // POE_UTIL_STOPWATCH_H_

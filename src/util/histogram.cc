#include "util/histogram.h"

#include <chrono>
#include <cmath>

namespace poe {

namespace {
// First bucket covers (0, 1us]; each bound grows by kGrowth, putting the
// last bound at 1e-3ms * kGrowth^63 ~ 1.6e5 ms (~160 s).
constexpr double kFirstUpperMs = 1e-3;
constexpr double kGrowth = 1.35;

const std::array<double, kLatencyHistogramBuckets>& BucketUppersMs() {
  static const std::array<double, kLatencyHistogramBuckets> uppers = [] {
    std::array<double, kLatencyHistogramBuckets> u{};
    double upper = kFirstUpperMs;
    for (int i = 0; i < kLatencyHistogramBuckets; ++i) {
      u[i] = upper;
      upper *= kGrowth;
    }
    return u;
  }();
  return uppers;
}
}  // namespace

double HistogramSnapshot::Percentile(double p) const {
  if (count <= 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const std::array<double, kLatencyHistogramBuckets>& uppers =
      BucketUppersMs();
  // Rank of the requested quantile (1-based), then walk the buckets.
  const double rank = p * static_cast<double>(count);
  int64_t seen = 0;
  for (int i = 0; i < kLatencyHistogramBuckets; ++i) {
    const int64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      const double lower = i == 0 ? 0.0 : uppers[i - 1];
      // The last bucket is open-ended; cap interpolation at the true max.
      const double upper =
          i == kLatencyHistogramBuckets - 1 ? max_ms() : uppers[i];
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      const double v = lower + (upper - lower) * (frac < 0.0 ? 0.0 : frac);
      const double cap = max_ms();
      return cap > 0.0 && v > cap ? cap : v;
    }
    seen += in_bucket;
  }
  return max_ms();
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (int i = 0; i < kLatencyHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum_ns += other.sum_ns;
  if (other.max_ns > max_ns) max_ns = other.max_ns;
}

LatencyHistogram::LatencyHistogram() {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

double LatencyHistogram::bucket_upper_ms(int i) { return BucketUppersMs()[i]; }

int LatencyHistogram::BucketIndex(double ms) const {
  if (ms <= kFirstUpperMs) return 0;
  // log_{kGrowth}(ms / first_upper), clamped to the last bucket.
  static const double kInvLogGrowth = 1.0 / std::log(kGrowth);
  const int i =
      1 + static_cast<int>(std::log(ms / kFirstUpperMs) * kInvLogGrowth);
  return i >= kNumBuckets ? kNumBuckets - 1 : i;
}

void LatencyHistogram::Record(double ms) {
  if (ms < 0.0) ms = 0.0;
  buckets_[BucketIndex(ms)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const int64_t ns = static_cast<int64_t>(ms * 1e6);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  int64_t prev = max_ns_.load(std::memory_order_relaxed);
  while (prev < ns && !max_ns_.compare_exchange_weak(
                          prev, ns, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot snap;
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  // count is the bucket sum, NOT count_: a concurrent Record() bumps the
  // bucket before the global counter, and a percentile walk whose rank
  // exceeds its own bucket mass would fall off the end. sum/max may lag
  // the buckets by the samples landing right now - gauges, not
  // accounting counters.
  snap.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  snap.max_ns = max_ns_.load(std::memory_order_relaxed);
  return snap;
}

QpsWindow::QpsWindow(int window_seconds)
    : window_seconds_(window_seconds < 1 ? 1 : window_seconds) {
  if (window_seconds_ > kSlots - 2) window_seconds_ = kSlots - 2;
  t0_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
               .count();
}

int64_t QpsWindow::NowSeconds() const {
  return static_cast<int64_t>(NowExact());
}

double QpsWindow::NowExact() const {
  const int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return static_cast<double>(now_ns - t0_ns_) * 1e-9;
}

void QpsWindow::Record() {
  const int64_t sec = NowSeconds();
  Slot& slot = slots_[sec % kSlots];
  int64_t stamped = slot.second.load(std::memory_order_relaxed);
  if (stamped != sec) {
    // First event of this wall second in this slot: recycle it. Losing the
    // race just means the other thread reset the count first.
    if (slot.second.compare_exchange_strong(stamped, sec,
                                            std::memory_order_relaxed)) {
      slot.count.store(0, std::memory_order_relaxed);
    }
  }
  slot.count.fetch_add(1, std::memory_order_relaxed);
}

double QpsWindow::Rate() const {
  const double now = NowExact();
  const int64_t now_sec = static_cast<int64_t>(now);
  int64_t events = 0;
  for (const Slot& slot : slots_) {
    const int64_t sec = slot.second.load(std::memory_order_relaxed);
    if (sec >= 0 && now_sec - sec < window_seconds_) {
      events += slot.count.load(std::memory_order_relaxed);
    }
  }
  // Young gauges divide by uptime, not the full window.
  double denom = now < static_cast<double>(window_seconds_)
                     ? now
                     : static_cast<double>(window_seconds_);
  if (denom < 1e-3) denom = 1e-3;
  return static_cast<double>(events) / denom;
}

}  // namespace poe

// Environment-variable helpers for bench/test scaling knobs.
#ifndef POE_UTIL_ENV_H_
#define POE_UTIL_ENV_H_

#include <string>

namespace poe {

/// Returns the env var value or `fallback` when unset/empty.
std::string GetEnvOr(const char* name, const std::string& fallback);

/// Returns the env var parsed as int, or `fallback` when unset/invalid.
int GetEnvIntOr(const char* name, int fallback);

/// Returns the env var parsed as double, or `fallback` when unset/invalid.
double GetEnvDoubleOr(const char* name, double fallback);

}  // namespace poe

#endif  // POE_UTIL_ENV_H_

// Simple data-parallel loop over a persistent thread pool.
#ifndef POE_UTIL_PARALLEL_FOR_H_
#define POE_UTIL_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

namespace poe {

/// Number of worker threads used by ParallelFor (hardware concurrency,
/// overridable with the POE_NUM_THREADS environment variable).
int NumThreads();

/// Runs body(begin, end) over [0, n) split into roughly equal chunks, one
/// per worker. Falls back to inline execution for small n or when only one
/// worker is configured. Blocks until all chunks complete.
///
/// `body` must be safe to call concurrently on disjoint ranges.
void ParallelFor(int64_t n,
                 const std::function<void(int64_t begin, int64_t end)>& body,
                 int64_t min_chunk = 1024);

/// Runs body(row, col) once for every cell of the rows x cols grid,
/// distributing cells over the same worker pool. Each invocation is an
/// independent task (chunk size 1): intended for coarse 2-D tile spaces
/// (e.g. GEMM macro-tiles) where per-cell work is large and uneven.
void ParallelFor2D(int64_t rows, int64_t cols,
                   const std::function<void(int64_t row, int64_t col)>& body);

}  // namespace poe

#endif  // POE_UTIL_PARALLEL_FOR_H_

// Status: error-code based error handling in the Arrow/RocksDB idiom.
// The library never throws; fallible operations return Status or Result<T>.
#ifndef POE_UTIL_STATUS_H_
#define POE_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace poe {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kCorruption,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  /// Transient inability to serve (poisoned expert, draining server,
  /// injected outage). Retriable, unlike kFailedPrecondition.
  kUnavailable,
  /// The request's deadline passed before the work ran to completion.
  kDeadlineExceeded,  // keep last: kNumStatusCodes derives from it
};

/// Number of distinct StatusCode values. status_test iterates the full
/// range so a future code without a StatusCodeToString entry fails CI.
constexpr int kNumStatusCodes =
    static_cast<int>(StatusCode::kDeadlineExceeded) + 1;

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy when OK (no allocation).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace poe

/// Propagates a non-OK Status from the current function.
#define POE_RETURN_NOT_OK(expr)               \
  do {                                        \
    ::poe::Status _st = (expr);               \
    if (!_st.ok()) return _st;                \
  } while (false)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// move-assigns the value into `lhs`.
#define POE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueOrDie();

#define POE_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define POE_ASSIGN_OR_RETURN_NAME(a, b) POE_ASSIGN_OR_RETURN_CONCAT(a, b)
#define POE_ASSIGN_OR_RETURN(lhs, expr) \
  POE_ASSIGN_OR_RETURN_IMPL(            \
      POE_ASSIGN_OR_RETURN_NAME(_poe_result_, __LINE__), lhs, expr)

#endif  // POE_UTIL_STATUS_H_

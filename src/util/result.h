// Result<T>: a Status or a value of type T (Arrow-style).
#ifndef POE_UTIL_RESULT_H_
#define POE_UTIL_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "util/status.h"

namespace poe {

/// Holds either a value of type T or an error Status.
///
/// Usage:
///   Result<Pool> r = Pool::Load(path);
///   if (!r.ok()) return r.status();
///   Pool pool = std::move(r).ValueOrDie();
/// or with the POE_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the value; aborts the process if this holds an error.
  /// Intended for tests, examples, and benches where the error is fatal.
  const T& ValueOrDie() const& {
    DieIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    DieIfError();
    return *value_;
  }
  T ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }

  /// Returns the value or `alternative` when this holds an error.
  T ValueOr(T alternative) const {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status_.ToString()
                << std::endl;
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace poe

#endif  // POE_UTIL_RESULT_H_

// Minimal leveled logging plus CHECK macros for programmer errors.
#ifndef POE_UTIL_LOGGING_H_
#define POE_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace poe {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level emitted by POE_LOG. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace poe

#define POE_LOG(level)                                            \
  ::poe::internal::LogMessage(::poe::LogLevel::k##level, __FILE__, \
                              __LINE__)                            \
      .stream()

/// Fatal invariant check: programmer errors only, never expected failures
/// (those return Status).
#define POE_CHECK(cond)                                                   \
  if (!(cond))                                                            \
  ::poe::internal::FatalLogMessage(__FILE__, __LINE__, #cond).stream()

#define POE_CHECK_EQ(a, b) POE_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define POE_CHECK_NE(a, b) POE_CHECK((a) != (b))
#define POE_CHECK_LT(a, b) POE_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define POE_CHECK_LE(a, b) POE_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define POE_CHECK_GT(a, b) POE_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define POE_CHECK_GE(a, b) POE_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // POE_UTIL_LOGGING_H_

#include "util/parallel_for.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace poe {

namespace {

/// A lazily constructed pool of workers that execute (begin, end) chunks.
/// Kept deliberately simple: one job at a time, caller blocks.
class WorkerPool {
 public:
  explicit WorkerPool(int num_workers) {
    workers_.reserve(num_workers);
    for (int i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void Run(int64_t n, int64_t chunk,
           const std::function<void(int64_t, int64_t)>& body) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      body_ = &body;
      total_ = n;
      chunk_ = chunk;
      next_ = 0;
      pending_ = (n + chunk - 1) / chunk;
      generation_++;
    }
    cv_.notify_all();
    // The caller participates too, so the pool works even with 0 workers.
    DrainChunks();
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    body_ = nullptr;
  }

 private:
  void DrainChunks() {
    while (true) {
      int64_t begin;
      const std::function<void(int64_t, int64_t)>* body;
      int64_t chunk, total;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (body_ == nullptr || next_ >= total_) return;
        begin = next_;
        next_ += chunk_;
        body = body_;
        chunk = chunk_;
        total = total_;
      }
      (*body)(begin, std::min(begin + chunk, total));
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }

  void WorkerLoop() {
    uint64_t seen_generation = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return shutdown_ || (body_ != nullptr && generation_ != seen_generation &&
                               next_ < total_);
        });
        if (shutdown_) return;
        seen_generation = generation_;
      }
      DrainChunks();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(int64_t, int64_t)>* body_ = nullptr;
  int64_t total_ = 0;
  int64_t chunk_ = 0;
  int64_t next_ = 0;
  int64_t pending_ = 0;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

int ComputeNumThreads() {
  if (const char* env = std::getenv("POE_NUM_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

int NumThreads() {
  static const int n = ComputeNumThreads();
  return n;
}

namespace {

// Function-local static pointer: allowed pattern for non-trivially
// destructible globals (the pool intentionally leaks at exit).
WorkerPool* GetPool() {
  static WorkerPool* pool = new WorkerPool(NumThreads() - 1);
  return pool;
}

}  // namespace

void ParallelFor(int64_t n,
                 const std::function<void(int64_t, int64_t)>& body,
                 int64_t min_chunk) {
  if (n <= 0) return;
  const int workers = NumThreads();
  if (workers <= 1 || n <= min_chunk) {
    body(0, n);
    return;
  }
  int64_t chunk = std::max<int64_t>(min_chunk, (n + workers - 1) / workers);
  GetPool()->Run(n, chunk, body);
}

void ParallelFor2D(int64_t rows, int64_t cols,
                   const std::function<void(int64_t row, int64_t col)>& body) {
  if (rows <= 0 || cols <= 0) return;
  const int64_t n = rows * cols;
  const std::function<void(int64_t, int64_t)> wrapper =
      [&](int64_t begin, int64_t end) {
        for (int64_t idx = begin; idx < end; ++idx) {
          body(idx / cols, idx % cols);
        }
      };
  if (NumThreads() <= 1 || n <= 1) {
    wrapper(0, n);
    return;
  }
  // Chunk size 1 (unlike ParallelFor's workers-sized chunks): grid cells
  // are claimed one at a time so uneven per-cell costs load-balance.
  GetPool()->Run(n, /*chunk=*/1, wrapper);
}

}  // namespace poe

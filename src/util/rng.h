// Deterministic pseudo-random number generation for reproducible runs.
#ifndef POE_UTIL_RNG_H_
#define POE_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace poe {

/// SplitMix64-based RNG. Deterministic given a seed, fast, and good enough
/// for weight init, data generation, and shuffling. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform float in [lo, hi).
  float Uniform(float lo, float hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t NextInt(int64_t n);

  /// Standard normal via Box-Muller.
  float Normal();

  /// Normal with mean/stddev.
  float Normal(float mean, float stddev) { return mean + stddev * Normal(); }

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (int64_t i = static_cast<int64_t>(v.size()) - 1; i > 0; --i) {
      int64_t j = NextInt(i + 1);
      std::swap(v[i], v[j]);
    }
  }

  /// Derives an independent child RNG (for per-worker streams).
  Rng Fork();

 private:
  uint64_t state_;
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace poe

#endif  // POE_UTIL_RNG_H_

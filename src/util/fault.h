// Deterministic, seeded fault injection for the serving and persistence
// stack. Failure paths must be exercised systematically, not discovered in
// production: code under test declares *sites* -
//
//   POE_FAULT_POINT("pool.load.read");          // returns injected Status
//   Status f = PoeFaultHit("store.materialize"); // manual handling
//
// - and a test (or the POE_FAULTS env var) arms a subset of them with
// per-site triggers. Unarmed runs pay one relaxed atomic load per site
// (the injector is globally disabled until the first Configure), so the
// hooks are effectively free in production builds.
//
// Spec grammar (POE_FAULTS or FaultInjector::Configure):
//
//   spec   := site '=' kind [':' kind-arg] ':' trigger [':' trig-arg]
//             (';' spec)*
//   kind   := io | corrupt | unavail | alloc | deadline | delay:<ms>
//   trigger:= always | prob:<p> | nth:<k> | once:<k> | after:<k>
//
//   io       -> Status::IoError            (transient; retried)
//   corrupt  -> Status::Corruption         (permanent; poisons experts)
//   unavail  -> Status::Unavailable        (transient; retried)
//   alloc    -> Status::ResourceExhausted  (allocation failure stand-in)
//   deadline -> Status::DeadlineExceeded
//   delay:<ms> -> sleeps <ms> then returns OK (slow-expert simulation)
//
//   always    fires on every hit
//   prob:<p>  fires with probability p per hit (deterministic per-site
//             RNG seeded from the global seed + site name, so a given
//             (spec, seed) replays the identical fault schedule)
//   nth:<k>   fires on every k-th hit (k, 2k, 3k, ...)
//   once:<k>  fires exactly on the k-th hit, never again
//   after:<k> fires on every hit past the first k
//
// Example:
//   POE_FAULTS='store.materialize=unavail:nth:3;server.forward=delay:5:prob:0.5'
//   POE_FAULTS_SEED=7
#ifndef POE_UTIL_FAULT_H_
#define POE_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace poe {

/// Per-site observability: how often control passed the site and how often
/// the injector fired. Tests reconcile retry/shed counters against these.
struct FaultSiteStats {
  std::string site;
  int64_t hits = 0;      ///< times control reached the site while armed
  int64_t triggers = 0;  ///< times a fault actually fired
};

class FaultInjector {
 public:
  /// The process-wide injector every POE_FAULT_POINT consults. Reads the
  /// POE_FAULTS / POE_FAULTS_SEED environment once at first access.
  static FaultInjector& Global();

  /// Replaces the armed configuration. An empty spec disarms everything.
  /// InvalidArgument on a malformed spec (the previous config is kept).
  Status Configure(const std::string& spec, uint64_t seed = 42);

  /// Disarms every site and zeroes all counters.
  void Clear();

  /// True when any site is armed. Relaxed load - THE fast-path gate.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Evaluates the site: returns the injected error if its trigger fires,
  /// sleeps for delay kinds, otherwise OK. Also OK (and uncounted) when
  /// the injector is disabled.
  Status Hit(const char* site);

  /// Counters for one site (zeros if never hit while armed).
  FaultSiteStats SiteStats(const std::string& site) const;
  /// Counters for every site observed while armed (armed or not).
  std::vector<FaultSiteStats> AllStats() const;
  int64_t TotalTriggers() const;

 private:
  FaultInjector() = default;
  struct Impl;
  Impl* impl();  // lazily built; never freed (process-lifetime singleton)

  std::atomic<bool> enabled_{false};
  std::atomic<Impl*> impl_{nullptr};
};

/// Manual form: evaluate a site and get the injected Status back.
inline Status PoeFaultHit(const char* site) {
  FaultInjector& f = FaultInjector::Global();
  if (!f.enabled()) return Status::OK();
  return f.Hit(site);
}

/// Declarative form: in a function returning Status or Result<T>,
/// propagate an injected fault from this site.
#define POE_FAULT_POINT(site)                               \
  do {                                                      \
    ::poe::FaultInjector& _fi = ::poe::FaultInjector::Global(); \
    if (_fi.enabled()) {                                    \
      ::poe::Status _fs = _fi.Hit(site);                    \
      if (!_fs.ok()) return _fs;                            \
    }                                                       \
  } while (false)

/// RAII config for tests: arms `spec` on construction, restores the
/// disarmed state on destruction (even on test failure/exception).
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const std::string& spec, uint64_t seed = 42);
  ~ScopedFaultInjection();
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace poe

#endif  // POE_UTIL_FAULT_H_

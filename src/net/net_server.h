// The network front-end of the serving runtime: a non-blocking epoll
// event-loop server speaking the wire protocol of wire.h over TCP,
// bridging sockets to an embedded InferenceServer.
//
// Threading model: ONE acceptor thread owns the listen socket and deals
// new connections round-robin to N worker threads; each worker owns an
// epoll instance, an eventfd mailbox, and every connection assigned to
// it for that connection's whole life (no cross-worker migration, so
// connection state needs no locking - only the mailbox does). Decoded
// requests go to InferenceServer::SubmitAsync; the completion callback
// (running on an inference worker thread) serializes the response frame
// and posts it to the owning net worker's mailbox, which flushes it on
// the event loop. Net workers never block on inference and inference
// workers never touch a socket.
//
// Zero-copy decode: a request's payload floats are recv()'d directly
// into the Tensor handed to the InferenceServer - the bytes land in
// their final resting place straight off the socket (the body CRC is
// extended incrementally as chunks arrive, so integrity checking adds
// no extra pass either).
//
// Backpressure: each connection has a bounded in-flight window. When it
// fills, the worker simply stops reading that socket (EPOLLIN off) -
// TCP's own flow control pushes back to the client; no frames are
// dropped and no unbounded queue forms. The InferenceServer's queue
// bound is the second gate: its ResourceExhausted rejections travel
// back as ordinary response frames.
//
// Protocol errors poison the connection (see wire.h): when the header
// was sound enough to carry a request_id the server sends one final
// error response, then flushes and closes; a malformed header closes
// immediately. The connection's already-submitted requests still get
// their responses before the close.
#ifndef POE_NET_NET_SERVER_H_
#define POE_NET_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.h"
#include "serve/inference_server.h"
#include "util/status.h"

namespace poe {

/// Per-worker (and aggregate) transport counters. Identities, enforced
/// by tests on a stopped server:
///   conns_accepted == conns_open + conns_dropped   (always)
///   frames_decoded == requests submitted downstream + precision_rejects
struct NetStats {
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  int64_t frames_decoded = 0;  ///< well-formed request frames (CRC passed)
  int64_t protocol_errors = 0;
  int64_t conns_accepted = 0;
  int64_t conns_dropped = 0;  ///< every departure: EOF, error, shutdown
  int64_t conns_open = 0;
  int64_t responses_sent = 0;  ///< response frames fully flushed
  /// Frames decoded but answered kFailedPrecondition because the wire
  /// precision demand did not match the pool (never submitted).
  int64_t precision_rejects = 0;

  void Merge(const NetStats& other);
};

/// Non-blocking TCP server. Start() binds and spawns the threads;
/// Stop() performs a graceful drain: no new connections, no new frames,
/// every in-flight request answered and flushed, then sockets close.
class NetServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 = kernel-assigned; read back via port()
    int num_workers = 2;
    /// Per-connection in-flight window: decoded-but-unanswered requests
    /// before the worker stops reading that socket.
    int max_inflight_per_conn = 32;
    uint32_t max_body_bytes = kDefaultMaxBodyBytes;
    int listen_backlog = 128;
  };

  /// `server` must outlive this object; Stop() this front-end BEFORE
  /// shutting the InferenceServer down (completion callbacks post into
  /// worker mailboxes).
  NetServer(InferenceServer* server, Options options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, spawns acceptor + workers. Fails (IoError) without
  /// threads on a bad address or exhausted descriptors.
  Status Start();

  /// Graceful drain; idempotent; also run by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves port 0); 0 before Start().
  int port() const { return port_; }

  /// Aggregate counters over all workers.
  NetStats stats() const;
  /// One entry per worker, index-aligned with the worker threads.
  std::vector<NetStats> worker_stats() const;

 private:
  struct Conn;
  struct Worker;

  void AcceptorLoop();
  void WorkerLoop(Worker* w);
  void AdoptIncoming(Worker* w);
  void DeliverCompletions(Worker* w);
  void HandleRead(Worker* w, Conn* c);
  void HandleWrite(Worker* w, Conn* c);
  /// Queues a frame and flushes opportunistically.
  void SendFrame(Worker* w, Conn* c, std::vector<uint8_t> frame);
  void UpdateEpoll(Worker* w, Conn* c);
  void CloseConn(Worker* w, Conn* c);
  /// Full request frame decoded: precision gate, then SubmitAsync.
  void DispatchRequest(Worker* w, Conn* c);
  /// Protocol error: counts it, optionally sends a final error frame
  /// (when `reply_id` is usable), and marks the connection closing.
  void ProtocolError(Worker* w, Conn* c, bool can_reply, uint64_t reply_id,
                     const Status& error);

  InferenceServer* server_;
  Options options_;
  ServingPrecision pool_precision_ = ServingPrecision::kFloat32;

  int listen_fd_ = -1;
  int accept_epoll_fd_ = -1;
  int accept_event_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  /// Requests handed to SubmitAsync whose completion has not yet been
  /// posted back. Stop() waits for zero before joining workers.
  std::atomic<int64_t> inflight_{0};
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
};

}  // namespace poe

#endif  // POE_NET_NET_SERVER_H_

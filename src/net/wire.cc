#include "net/wire.h"

#include <cstring>

#include "util/crc32c.h"

namespace poe {

namespace {

// Little-endian put/get through memcpy: well-defined for any alignment,
// and compiles to plain loads/stores on x86-64.
template <typename T>
void Put(std::vector<uint8_t>& buf, T v) {
  const size_t at = buf.size();
  buf.resize(at + sizeof(T));
  std::memcpy(buf.data() + at, &v, sizeof(T));
}

template <typename T>
T Get(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

Status ProtocolError(const std::string& what) {
  return Status::InvalidArgument("wire protocol: " + what);
}

}  // namespace

void SealWireFrame(std::vector<uint8_t>& frame, uint8_t type,
                   uint64_t request_id) {
  const uint32_t body_len =
      static_cast<uint32_t>(frame.size() - kWireHeaderBytes);
  const uint32_t body_crc =
      Crc32c(frame.data() + kWireHeaderBytes, body_len);
  uint8_t* h = frame.data();
  const uint32_t magic = WireMagic();
  std::memcpy(h, &magic, 4);
  h[4] = kWireVersion;
  h[5] = type;
  h[6] = 0;
  h[7] = 0;
  std::memcpy(h + 8, &body_len, 4);
  std::memcpy(h + 12, &body_crc, 4);
  std::memcpy(h + 16, &request_id, 8);
}

uint32_t WireMagic() {
  const uint8_t bytes[4] = {'P', 'O', 'E', '1'};
  uint32_t magic;
  std::memcpy(&magic, bytes, 4);
  return magic;
}

std::vector<uint8_t> EncodeRequestFrame(uint64_t request_id,
                                        const std::vector<int>& task_ids,
                                        const Tensor& input,
                                        double deadline_ms,
                                        WirePrecision precision) {
  std::vector<uint8_t> frame(kWireHeaderBytes);
  frame.reserve(kWireHeaderBytes + kWireRequestMetaBytes +
                4 * task_ids.size() + sizeof(float) * input.numel());
  Put<double>(frame, deadline_ms);
  Put<uint8_t>(frame, static_cast<uint8_t>(precision));
  Put<uint8_t>(frame, 4);  // ndim
  Put<uint16_t>(frame, static_cast<uint16_t>(task_ids.size()));
  for (int d = 0; d < 4; ++d) {
    Put<int64_t>(frame, input.ndim() == 4 ? input.dim(d) : 0);
  }
  for (int t : task_ids) Put<int32_t>(frame, static_cast<int32_t>(t));
  const size_t at = frame.size();
  const size_t payload = sizeof(float) * static_cast<size_t>(input.numel());
  frame.resize(at + payload);
  if (payload > 0) std::memcpy(frame.data() + at, input.data(), payload);
  SealWireFrame(frame, kWireTypeRequest, request_id);
  return frame;
}

std::vector<uint8_t> EncodeResponseFrame(uint64_t request_id,
                                         const InferenceResponse& response) {
  const bool ok = response.status.ok();
  const std::string& msg = response.status.message();
  const int64_t rows = ok && response.logits.defined()
                           ? response.logits.dim(0)
                           : 0;
  const uint32_t num_classes =
      ok && response.logits.defined()
          ? static_cast<uint32_t>(response.logits.dim(1))
          : 0;

  std::vector<uint8_t> frame(kWireHeaderBytes);
  Put<int32_t>(frame, static_cast<int32_t>(response.status.code()));
  Put<uint8_t>(frame,
               response.precision == ServingPrecision::kInt8 ? 1 : 0);
  Put<uint8_t>(frame, response.trunk_degraded ? 1 : 0);
  Put<uint16_t>(frame, static_cast<uint16_t>(response.degraded_branches));
  Put<double>(frame, response.queue_ms);
  Put<double>(frame, response.total_ms);
  Put<uint32_t>(frame, static_cast<uint32_t>(msg.size()));
  Put<uint32_t>(frame, num_classes);
  Put<int64_t>(frame, rows);
  Put<uint64_t>(frame, response.generation);
  const size_t at = frame.size();
  frame.resize(at + msg.size());
  std::memcpy(frame.data() + at, msg.data(), msg.size());
  for (uint32_t c = 0; c < num_classes; ++c) {
    Put<int32_t>(frame, response.global_classes[c]);
  }
  for (int64_t r = 0; r < rows; ++r) {
    Put<int32_t>(frame, response.predictions[r]);
  }
  if (rows > 0) {
    const size_t logit_bytes =
        sizeof(float) * static_cast<size_t>(rows) * num_classes;
    const size_t lat = frame.size();
    frame.resize(lat + logit_bytes);
    std::memcpy(frame.data() + lat, response.logits.data(), logit_bytes);
  }
  SealWireFrame(frame, kWireTypeResponse, request_id);
  return frame;
}

std::vector<uint8_t> EncodeErrorFrame(uint64_t request_id,
                                      const Status& status) {
  InferenceResponse response;
  response.status = status;
  return EncodeResponseFrame(request_id, response);
}

Status DecodeHeader(const uint8_t* data, size_t len, uint8_t expected_type,
                    uint32_t max_body_bytes, WireHeader* out) {
  if (len < kWireHeaderBytes) {
    return ProtocolError("short header (" + std::to_string(len) + " bytes)");
  }
  if (Get<uint32_t>(data) != WireMagic()) {
    return ProtocolError("bad magic");
  }
  out->version = data[4];
  out->type = data[5];
  if (out->version != kWireVersion) {
    return ProtocolError("unsupported version " +
                         std::to_string(out->version));
  }
  if (out->type != expected_type) {
    return ProtocolError("unexpected frame type " +
                         std::to_string(out->type));
  }
  if (Get<uint16_t>(data + 6) != 0) {
    return ProtocolError("nonzero reserved field");
  }
  out->body_len = Get<uint32_t>(data + 8);
  out->body_crc = Get<uint32_t>(data + 12);
  out->request_id = Get<uint64_t>(data + 16);
  if (out->body_len > max_body_bytes) {
    return ProtocolError("oversized body (" + std::to_string(out->body_len) +
                         " > " + std::to_string(max_body_bytes) + " bytes)");
  }
  // Peer-RPC frames (types 3..6) have no fixed minimum here; their codecs
  // validate body layout themselves after the CRC check.
  size_t min_body = 0;
  if (expected_type == kWireTypeRequest) min_body = kWireRequestMetaBytes;
  if (expected_type == kWireTypeResponse) min_body = kWireResponseFixedBytes;
  if (out->body_len < min_body) {
    return ProtocolError("undersized body (" +
                         std::to_string(out->body_len) + " bytes)");
  }
  return Status::OK();
}

Status DecodeRequestMeta(const uint8_t* data, size_t len,
                         const WireHeader& header, WireRequestMeta* out) {
  if (len < kWireRequestMetaBytes) {
    return ProtocolError("short request meta");
  }
  out->deadline_ms = Get<double>(data);
  const uint8_t precision = data[8];
  if (precision > 2) {
    return ProtocolError("bad precision byte " + std::to_string(precision));
  }
  out->precision = static_cast<WirePrecision>(precision);
  if (data[9] != 4) {
    return ProtocolError("ndim must be 4, got " + std::to_string(data[9]));
  }
  out->num_tasks = Get<uint16_t>(data + 10);
  if (out->num_tasks < 1 || out->num_tasks > kMaxWireTasks) {
    return ProtocolError("bad task count " + std::to_string(out->num_tasks));
  }
  int64_t elems = 1;
  for (int d = 0; d < 4; ++d) {
    out->dims[d] = Get<int64_t>(data + 12 + 8 * d);
    if (out->dims[d] < 1) {
      return ProtocolError("non-positive dim " + std::to_string(out->dims[d]));
    }
    // Overflow-safe accumulation: bail before the product can wrap.
    if (elems > (1ll << 40) / out->dims[d]) {
      return ProtocolError("tensor too large");
    }
    elems *= out->dims[d];
  }
  const uint64_t want = kWireRequestMetaBytes +
                        static_cast<uint64_t>(out->task_bytes()) +
                        static_cast<uint64_t>(4) * elems;
  if (want != header.body_len) {
    return ProtocolError("body length " + std::to_string(header.body_len) +
                         " does not match meta (expected " +
                         std::to_string(want) + ")");
  }
  return Status::OK();
}

Status DecodeResponseBody(const uint8_t* data, size_t len,
                          const WireHeader& header, WireResponse* out) {
  if (len != header.body_len || len < kWireResponseFixedBytes) {
    return ProtocolError("response body size mismatch");
  }
  out->request_id = header.request_id;
  const int32_t code = Get<int32_t>(data);
  if (code < 0 || code >= kNumStatusCodes) {
    return ProtocolError("bad status code " + std::to_string(code));
  }
  out->precision =
      data[4] == 1 ? ServingPrecision::kInt8 : ServingPrecision::kFloat32;
  out->trunk_degraded = data[5] != 0;
  out->degraded_branches = Get<uint16_t>(data + 6);
  out->queue_ms = Get<double>(data + 8);
  out->total_ms = Get<double>(data + 16);
  const uint32_t msg_len = Get<uint32_t>(data + 24);
  const uint32_t num_classes = Get<uint32_t>(data + 28);
  const int64_t rows = Get<int64_t>(data + 32);
  if (rows < 0) return ProtocolError("negative row count");
  out->generation = Get<uint64_t>(data + 40);
  const uint64_t want =
      kWireResponseFixedBytes + static_cast<uint64_t>(msg_len) +
      4ull * num_classes + 4ull * static_cast<uint64_t>(rows) +
      4ull * static_cast<uint64_t>(rows) * num_classes;
  if (want != len) {
    return ProtocolError("response body length mismatch");
  }
  const uint8_t* p = data + kWireResponseFixedBytes;
  std::string msg(reinterpret_cast<const char*>(p), msg_len);
  out->status = Status(static_cast<StatusCode>(code), std::move(msg));
  p += msg_len;
  out->global_classes.resize(num_classes);
  for (uint32_t c = 0; c < num_classes; ++c) {
    out->global_classes[c] = Get<int32_t>(p);
    p += 4;
  }
  out->predictions.resize(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    out->predictions[static_cast<size_t>(r)] = Get<int32_t>(p);
    p += 4;
  }
  if (rows > 0 && num_classes > 0) {
    out->logits = Tensor({rows, static_cast<int64_t>(num_classes)});
    std::memcpy(out->logits.data(), p,
                sizeof(float) * static_cast<size_t>(rows) * num_classes);
  } else {
    out->logits = Tensor();
  }
  return Status::OK();
}

}  // namespace poe

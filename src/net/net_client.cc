#include "net/net_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/crc32c.h"

namespace poe {

namespace {

/// Errnos a retry might cure: the peer is down, restarting, or dropped the
/// connection mid-stream. Everything else (EBADF, EACCES, EINVAL, ...)
/// would fail identically on every attempt.
bool TransientSocketErrno(int err) {
  return err == ECONNREFUSED || err == ECONNRESET || err == EPIPE ||
         err == ETIMEDOUT || err == EHOSTUNREACH || err == ENETUNREACH ||
         err == ENETDOWN || err == EAGAIN || err == EWOULDBLOCK;
}

Status SocketError(const std::string& op, int err) {
  const std::string msg = op + ": " + std::strerror(err);
  return TransientSocketErrno(err) ? Status::Unavailable(msg)
                                   : Status::IoError(msg);
}

}  // namespace

NetClient::~NetClient() { Close(); }

Status NetClient::Connect(const std::string& host, int port) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s =
        SocketError("connect " + host + ":" + std::to_string(port), errno);
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status NetClient::WriteFull(const void* buf, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      Close();
      return SocketError("send", err);
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status NetClient::ReadFull(void* buf, size_t len) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      Close();
      return SocketError("recv", err);
    }
    if (n == 0) {
      Close();
      return Status::Unavailable("connection closed by server");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status NetClient::SendRaw(const void* data, size_t len) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  return WriteFull(data, len);
}

Status NetClient::SetIoTimeout(double timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  timeval tv{};
  if (timeout_ms > 0) {
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1e3);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_ms - 1e3 * static_cast<double>(tv.tv_sec)) * 1e3);
  }
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return SocketError("setsockopt", errno);
  }
  return Status::OK();
}

Status NetClient::Call(const std::vector<uint8_t>& frame,
                       uint8_t expected_type, WireHeader* header,
                       std::vector<uint8_t>* body) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  POE_RETURN_NOT_OK(WriteFull(frame.data(), frame.size()));
  uint8_t hbuf[kWireHeaderBytes];
  POE_RETURN_NOT_OK(ReadFull(hbuf, sizeof(hbuf)));
  const Status decoded =
      DecodeHeader(hbuf, sizeof(hbuf), expected_type, max_body_bytes_, header);
  if (!decoded.ok()) {
    // A framing error poisons the connection by design — nothing after a
    // bad header can be trusted to be frame-aligned.
    Close();
    return decoded;
  }
  body->resize(header->body_len);
  POE_RETURN_NOT_OK(ReadFull(body->data(), body->size()));
  if (Crc32c(body->data(), body->size()) != header->body_crc) {
    Close();
    return Status::Corruption("frame body CRC mismatch");
  }
  return Status::OK();
}

Result<uint64_t> NetClient::Send(const std::vector<int>& task_ids,
                                 const Tensor& input, double deadline_ms,
                                 WirePrecision precision) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  if (!input.defined() || input.ndim() != 4) {
    return Status::InvalidArgument("input must be a [n,c,h,w] tensor");
  }
  if (task_ids.empty() ||
      task_ids.size() > static_cast<size_t>(kMaxWireTasks)) {
    return Status::InvalidArgument("task count out of wire range");
  }
  const uint64_t id = next_id_++;
  const std::vector<uint8_t> frame =
      EncodeRequestFrame(id, task_ids, input, deadline_ms, precision);
  POE_RETURN_NOT_OK(WriteFull(frame.data(), frame.size()));
  return id;
}

Result<WireResponse> NetClient::Receive() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  uint8_t hbuf[kWireHeaderBytes];
  POE_RETURN_NOT_OK(ReadFull(hbuf, sizeof(hbuf)));
  WireHeader header;
  POE_RETURN_NOT_OK(DecodeHeader(hbuf, sizeof(hbuf), kWireTypeResponse,
                                 max_body_bytes_, &header));
  std::vector<uint8_t> body(header.body_len);
  POE_RETURN_NOT_OK(ReadFull(body.data(), body.size()));
  if (Crc32c(body.data(), body.size()) != header.body_crc) {
    Close();
    return Status::Corruption("response body CRC mismatch");
  }
  WireResponse response;
  POE_RETURN_NOT_OK(
      DecodeResponseBody(body.data(), body.size(), header, &response));
  return response;
}

Result<WireResponse> NetClient::Query(const std::vector<int>& task_ids,
                                      const Tensor& input, double deadline_ms,
                                      WirePrecision precision) {
  uint64_t id = 0;
  POE_ASSIGN_OR_RETURN(id, Send(task_ids, input, deadline_ms, precision));
  WireResponse response;
  POE_ASSIGN_OR_RETURN(response, Receive());
  if (response.request_id != id) {
    Close();
    return Status::Internal(
        "response correlation mismatch (pipelining misuse?)");
  }
  return response;
}

}  // namespace poe

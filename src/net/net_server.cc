#include "net/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <utility>

#include "util/crc32c.h"
#include "util/fault.h"

namespace poe {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// True when the first 8 header bytes (magic/version/type/reserved) are
/// sound - then the request_id field is trustworthy and a protocol-error
/// reply can carry it. A header failing THIS is not even our protocol;
/// the connection closes without a reply.
bool HeaderPrefixValid(const uint8_t* h) {
  uint32_t magic;
  uint16_t reserved;
  std::memcpy(&magic, h, 4);
  std::memcpy(&reserved, h + 6, 2);
  return magic == WireMagic() && h[4] == kWireVersion &&
         h[5] == kWireTypeRequest && reserved == 0;
}

}  // namespace

void NetStats::Merge(const NetStats& other) {
  bytes_in += other.bytes_in;
  bytes_out += other.bytes_out;
  frames_decoded += other.frames_decoded;
  protocol_errors += other.protocol_errors;
  conns_accepted += other.conns_accepted;
  conns_dropped += other.conns_dropped;
  conns_open += other.conns_open;
  responses_sent += other.responses_sent;
  precision_rejects += other.precision_rejects;
}

/// One TCP connection, owned by exactly one worker thread (every field
/// is touched only on that thread).
struct NetServer::Conn {
  int fd = -1;
  uint64_t id = 0;

  // Read-side state machine: header -> meta -> tasks -> payload, each
  // stage accumulating exactly its byte count before decoding.
  enum class Stage { kHeader, kMeta, kTasks, kPayload };
  Stage stage = Stage::kHeader;
  size_t got = 0;  ///< bytes accumulated in the current stage
  uint8_t hbuf[kWireHeaderBytes];
  uint8_t mbuf[kWireRequestMetaBytes];
  std::vector<uint8_t> tbuf;
  WireHeader header;
  WireRequestMeta meta;
  /// The request input, recv()'d into directly (zero-copy decode).
  Tensor payload;
  uint32_t crc = 0;  ///< running body CRC across meta/tasks/payload

  // Write side: fully-serialized frames awaiting the socket.
  std::deque<std::vector<uint8_t>> out;
  size_t out_off = 0;  ///< bytes of out.front() already sent
  bool want_write = false;

  int inflight = 0;     ///< decoded-but-unanswered requests
  bool paused = false;  ///< EPOLLIN off: in-flight window full
  bool closing = false;  ///< no more reads; close once flushed + drained
  bool dead = false;     ///< fd closed; object parked until loop top
};

struct NetServer::Worker {
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;

  // Mailbox: the only cross-thread state. The acceptor pushes fds, the
  // inference-side completion callbacks push serialized response frames.
  std::mutex mu;
  std::vector<int> incoming;
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> completions;

  // Worker-thread-only connection table. Closed conns park in the
  // graveyard until the next loop iteration so pointers inside the
  // current epoll batch stay valid.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
  std::vector<std::unique_ptr<Conn>> graveyard;
  uint64_t next_conn_id = 1;

  std::atomic<int64_t> bytes_in{0};
  std::atomic<int64_t> bytes_out{0};
  std::atomic<int64_t> frames_decoded{0};
  std::atomic<int64_t> protocol_errors{0};
  std::atomic<int64_t> conns_accepted{0};
  std::atomic<int64_t> conns_dropped{0};
  std::atomic<int64_t> conns_open{0};
  std::atomic<int64_t> responses_sent{0};
  std::atomic<int64_t> precision_rejects{0};
};

NetServer::NetServer(InferenceServer* server, Options options)
    : server_(server), options_(std::move(options)) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.max_inflight_per_conn < 1) options_.max_inflight_per_conn = 1;
  if (options_.listen_backlog < 1) options_.listen_backlog = 1;
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (running_.load(std::memory_order_acquire) || !workers_.empty()) {
    return Status::FailedPrecondition("net server already started");
  }
  pool_precision_ = server_->stats().precision;

  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status s = Errno("bind " + options_.host + ":" +
                           std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    const Status s = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  accept_epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  accept_event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (accept_epoll_fd_ < 0 || accept_event_fd_ < 0) {
    Stop();
    return Errno("epoll/eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr tags the eventfd everywhere
  ::epoll_ctl(accept_epoll_fd_, EPOLL_CTL_ADD, accept_event_fd_, &ev);
  ev.data.ptr = this;  // `this` tags the listen socket
  ::epoll_ctl(accept_epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);

  stopping_.store(false, std::memory_order_release);
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    w->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (w->epoll_fd < 0 || w->event_fd < 0) {
      workers_.push_back(std::move(w));
      Stop();
      return Errno("worker epoll/eventfd");
    }
    epoll_event wev{};
    wev.events = EPOLLIN;
    wev.data.ptr = nullptr;
    ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->event_fd, &wev);
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_) {
    Worker* raw = w.get();
    w->thread = std::thread([this, raw] { WorkerLoop(raw); });
  }
  acceptor_ = std::thread([this] { AcceptorLoop(); });
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void NetServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // A second caller (destructor after explicit Stop) finds the flag
    // set; the first caller finished the teardown below.
    return;
  }
  const uint64_t tick = 1;
  if (accept_event_fd_ >= 0) {
    ssize_t ignored = ::write(accept_event_fd_, &tick, sizeof(tick));
    (void)ignored;
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& w : workers_) {
    if (w->event_fd >= 0) {
      ssize_t ignored = ::write(w->event_fd, &tick, sizeof(tick));
      (void)ignored;
    }
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // Completion callbacks post into worker mailboxes/eventfds, so those
  // stay alive until every handed-off request has called back (a conn
  // dropped mid-flight leaves callbacks behind; their posts are dropped
  // at the mailbox since the conn id is gone).
  {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] {
      return inflight_.load(std::memory_order_acquire) == 0;
    });
  }
  for (auto& w : workers_) {
    if (w->event_fd >= 0) ::close(w->event_fd);
    if (w->epoll_fd >= 0) ::close(w->epoll_fd);
    w->event_fd = w->epoll_fd = -1;
    w->graveyard.clear();
    std::lock_guard<std::mutex> lock(w->mu);
    for (int fd : w->incoming) ::close(fd);
    w->incoming.clear();
    w->completions.clear();
  }
  if (accept_epoll_fd_ >= 0) ::close(accept_epoll_fd_);
  if (accept_event_fd_ >= 0) ::close(accept_event_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  accept_epoll_fd_ = accept_event_fd_ = listen_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

NetStats NetServer::stats() const {
  NetStats total;
  for (const NetStats& s : worker_stats()) total.Merge(s);
  return total;
}

std::vector<NetStats> NetServer::worker_stats() const {
  std::vector<NetStats> out;
  out.reserve(workers_.size());
  for (const auto& w : workers_) {
    NetStats s;
    s.bytes_in = w->bytes_in.load(std::memory_order_relaxed);
    s.bytes_out = w->bytes_out.load(std::memory_order_relaxed);
    s.frames_decoded = w->frames_decoded.load(std::memory_order_relaxed);
    s.protocol_errors = w->protocol_errors.load(std::memory_order_relaxed);
    // Departure loads before arrivals so the live identity
    // conns_accepted >= conns_open + conns_dropped can only lag on the
    // accepted side, matching the serve-side counter convention.
    s.conns_dropped = w->conns_dropped.load(std::memory_order_acquire);
    s.conns_open = w->conns_open.load(std::memory_order_acquire);
    s.conns_accepted = w->conns_accepted.load(std::memory_order_acquire);
    s.responses_sent = w->responses_sent.load(std::memory_order_relaxed);
    s.precision_rejects =
        w->precision_rejects.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

void NetServer::AcceptorLoop() {
  epoll_event events[8];
  size_t next_worker = 0;
  for (;;) {
    const int n = ::epoll_wait(accept_epoll_fd_, events, 8, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        uint64_t drained;
        while (::read(accept_event_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      for (;;) {
        const int fd =
            ::accept4(listen_fd_, nullptr, nullptr,
                      SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;  // EAGAIN (or a transient error; retry on next)
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        Worker* w = workers_[next_worker++ % workers_.size()].get();
        {
          std::lock_guard<std::mutex> lock(w->mu);
          w->incoming.push_back(fd);
        }
        const uint64_t tick = 1;
        ssize_t ignored = ::write(w->event_fd, &tick, sizeof(tick));
        (void)ignored;
      }
    }
  }
}

void NetServer::WorkerLoop(Worker* w) {
  std::vector<epoll_event> events(64);
  bool draining = false;
  for (;;) {
    w->graveyard.clear();  // safe: the previous batch is fully processed
    if (stopping_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      std::vector<Conn*> open;
      open.reserve(w->conns.size());
      for (auto& kv : w->conns) open.push_back(kv.second.get());
      for (Conn* c : open) {
        c->closing = true;
        if (c->inflight == 0 && c->out.empty()) {
          CloseConn(w, c);
        } else {
          UpdateEpoll(w, c);
        }
      }
    }
    if (draining && w->conns.empty()) return;
    const int n = ::epoll_wait(w->epoll_fd, events.data(),
                               static_cast<int>(events.size()),
                               draining ? 50 : -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        uint64_t drained;
        while (::read(w->event_fd, &drained, sizeof(drained)) > 0) {
        }
        AdoptIncoming(w);
        DeliverCompletions(w);
        continue;
      }
      Conn* c = static_cast<Conn*>(events[i].data.ptr);
      if (c->dead) continue;
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        HandleRead(w, c);
      }
      if (!c->dead && (events[i].events & EPOLLOUT)) {
        HandleWrite(w, c);
      }
    }
  }
}

void NetServer::AdoptIncoming(Worker* w) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(w->mu);
    fds.swap(w->incoming);
  }
  for (int fd : fds) {
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = w->next_conn_id++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn.get();
    if (::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    w->conns_accepted.fetch_add(1, std::memory_order_release);
    w->conns_open.fetch_add(1, std::memory_order_relaxed);
    w->conns.emplace(conn->id, std::move(conn));
  }
}

void NetServer::DeliverCompletions(Worker* w) {
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> done;
  {
    std::lock_guard<std::mutex> lock(w->mu);
    done.swap(w->completions);
  }
  for (auto& entry : done) {
    auto it = w->conns.find(entry.first);
    if (it == w->conns.end()) continue;  // conn departed; drop the frame
    Conn* c = it->second.get();
    if (c->dead) continue;
    --c->inflight;
    if (c->paused && !c->closing &&
        c->inflight < options_.max_inflight_per_conn) {
      // Window reopened: resume reading this socket.
      c->paused = false;
      UpdateEpoll(w, c);
    }
    SendFrame(w, c, std::move(entry.second));
  }
}

void NetServer::SendFrame(Worker* w, Conn* c, std::vector<uint8_t> frame) {
  if (c->dead) return;
  c->out.push_back(std::move(frame));
  HandleWrite(w, c);
}

void NetServer::HandleWrite(Worker* w, Conn* c) {
  if (c->dead) return;
  if (!c->out.empty()) {
    const Status fault = PoeFaultHit("net.write");
    if (!fault.ok()) {
      // An injected transport failure: the socket is gone as far as this
      // connection is concerned.
      CloseConn(w, c);
      return;
    }
  }
  while (!c->out.empty()) {
    const std::vector<uint8_t>& front = c->out.front();
    const size_t left = front.size() - c->out_off;
    const ssize_t n =
        ::send(c->fd, front.data() + c->out_off, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConn(w, c);
      return;
    }
    w->bytes_out.fetch_add(n, std::memory_order_relaxed);
    c->out_off += static_cast<size_t>(n);
    if (c->out_off == front.size()) {
      c->out.pop_front();
      c->out_off = 0;
      w->responses_sent.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const bool want_write = !c->out.empty();
  if (want_write != c->want_write) {
    c->want_write = want_write;
    UpdateEpoll(w, c);
  }
  if (c->closing && c->inflight == 0 && c->out.empty()) CloseConn(w, c);
}

void NetServer::UpdateEpoll(Worker* w, Conn* c) {
  if (c->dead) return;
  epoll_event ev{};
  ev.data.ptr = c;
  ev.events = 0;  // events==0 is valid: only HUP/ERR are reported
  if (!c->paused && !c->closing) ev.events |= EPOLLIN;
  if (c->want_write) ev.events |= EPOLLOUT;
  ::epoll_ctl(w->epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
}

void NetServer::CloseConn(Worker* w, Conn* c) {
  if (c->dead) return;
  c->dead = true;
  ::epoll_ctl(w->epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
  ::close(c->fd);
  // Dropped loads as >= in stats(): bump it before open shrinks.
  w->conns_dropped.fetch_add(1, std::memory_order_release);
  w->conns_open.fetch_sub(1, std::memory_order_release);
  auto it = w->conns.find(c->id);
  if (it != w->conns.end()) {
    w->graveyard.push_back(std::move(it->second));
    w->conns.erase(it);
  }
}

void NetServer::ProtocolError(Worker* w, Conn* c, bool can_reply,
                              uint64_t reply_id, const Status& error) {
  w->protocol_errors.fetch_add(1, std::memory_order_relaxed);
  if (!can_reply) {
    CloseConn(w, c);
    return;
  }
  // Framing is poisoned but the peer can still be told why: one final
  // error response, then flush and close. Requests already in flight on
  // this connection still get their responses first.
  c->closing = true;
  UpdateEpoll(w, c);
  SendFrame(w, c, EncodeErrorFrame(reply_id, error));
}

void NetServer::HandleRead(Worker* w, Conn* c) {
  if (c->paused || c->closing || c->dead) return;
  {
    const Status fault = PoeFaultHit("net.read");
    if (!fault.ok()) {
      CloseConn(w, c);
      return;
    }
  }
  for (;;) {
    uint8_t* dst = nullptr;
    size_t stage_size = 0;
    switch (c->stage) {
      case Conn::Stage::kHeader:
        dst = c->hbuf;
        stage_size = kWireHeaderBytes;
        break;
      case Conn::Stage::kMeta:
        dst = c->mbuf;
        stage_size = kWireRequestMetaBytes;
        break;
      case Conn::Stage::kTasks:
        dst = c->tbuf.data();
        stage_size = c->tbuf.size();
        break;
      case Conn::Stage::kPayload:
        dst = reinterpret_cast<uint8_t*>(c->payload.data());
        stage_size = c->meta.payload_bytes();
        break;
    }
    const ssize_t n = ::recv(c->fd, dst + c->got, stage_size - c->got, 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      CloseConn(w, c);  // reset/failed socket, not a protocol error
      return;
    }
    if (n == 0) {
      // EOF. Clean only on a frame boundary; mid-frame it is a
      // truncated frame - a protocol error by the framing rules.
      if (c->stage != Conn::Stage::kHeader || c->got != 0) {
        w->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      }
      CloseConn(w, c);
      return;
    }
    w->bytes_in.fetch_add(n, std::memory_order_relaxed);
    if (c->stage == Conn::Stage::kPayload) {
      // The CRC of payload bytes is folded in as chunks land: no second
      // pass over what can be the bulk of the frame.
      c->crc = Crc32cExtend(c->crc, dst + c->got, static_cast<size_t>(n));
    }
    c->got += static_cast<size_t>(n);
    if (c->got < stage_size) continue;

    switch (c->stage) {
      case Conn::Stage::kHeader: {
        const Status s =
            DecodeHeader(c->hbuf, kWireHeaderBytes, kWireTypeRequest,
                         options_.max_body_bytes, &c->header);
        if (!s.ok()) {
          uint64_t rid = 0;
          std::memcpy(&rid, c->hbuf + 16, sizeof(rid));
          ProtocolError(w, c, HeaderPrefixValid(c->hbuf), rid, s);
          return;
        }
        c->stage = Conn::Stage::kMeta;
        c->got = 0;
        break;
      }
      case Conn::Stage::kMeta: {
        c->crc = Crc32cExtend(0, c->mbuf, kWireRequestMetaBytes);
        const Status s = DecodeRequestMeta(c->mbuf, kWireRequestMetaBytes,
                                           c->header, &c->meta);
        if (!s.ok()) {
          ProtocolError(w, c, true, c->header.request_id, s);
          return;
        }
        c->tbuf.resize(c->meta.task_bytes());
        c->stage = Conn::Stage::kTasks;
        c->got = 0;
        break;
      }
      case Conn::Stage::kTasks: {
        c->crc = Crc32cExtend(c->crc, c->tbuf.data(), c->tbuf.size());
        c->payload = Tensor({c->meta.dims[0], c->meta.dims[1],
                             c->meta.dims[2], c->meta.dims[3]});
        c->stage = Conn::Stage::kPayload;
        c->got = 0;
        break;
      }
      case Conn::Stage::kPayload: {
        if (c->crc != c->header.body_crc) {
          ProtocolError(w, c, true, c->header.request_id,
                        Status::Corruption("request body CRC mismatch"));
          return;
        }
        DispatchRequest(w, c);
        if (c->dead || c->closing) return;
        c->stage = Conn::Stage::kHeader;
        c->got = 0;
        c->crc = 0;
        c->payload = Tensor();
        if (c->paused) return;  // window filled; EPOLLIN is off now
        break;
      }
    }
  }
}

void NetServer::DispatchRequest(Worker* w, Conn* c) {
  w->frames_decoded.fetch_add(1, std::memory_order_relaxed);

  const WirePrecision want = c->meta.precision;
  const bool mismatch =
      (want == WirePrecision::kFloat32 &&
       pool_precision_ != ServingPrecision::kFloat32) ||
      (want == WirePrecision::kInt8 &&
       pool_precision_ != ServingPrecision::kInt8);
  if (mismatch) {
    w->precision_rejects.fetch_add(1, std::memory_order_relaxed);
    SendFrame(w, c,
              EncodeErrorFrame(
                  c->header.request_id,
                  Status::FailedPrecondition(
                      "pool serves a different precision than requested")));
    return;
  }

  InferenceRequest request;
  request.task_ids.resize(c->meta.num_tasks);
  for (size_t i = 0; i < c->meta.num_tasks; ++i) {
    int32_t task;
    std::memcpy(&task, c->tbuf.data() + 4 * i, sizeof(task));
    request.task_ids[i] = task;
  }
  request.input = std::move(c->payload);
  request.deadline_ms = c->meta.deadline_ms;

  ++c->inflight;
  if (c->inflight >= options_.max_inflight_per_conn) {
    // Backpressure: the window is full - stop reading this socket and
    // let TCP flow control push back to the client. Rejections from the
    // inference queue (ResourceExhausted) count toward the window like
    // any other request; their callbacks run inline below.
    c->paused = true;
    UpdateEpoll(w, c);
  }
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  const uint64_t rid = c->header.request_id;
  const uint64_t cid = c->id;
  server_->SubmitAsync(
      std::move(request), [this, w, cid, rid](InferenceResponse response) {
        // Runs on an inference worker thread (or inline on the net
        // worker for immediate rejections): serialize off the event
        // loop, post to the owning worker's mailbox, wake it.
        std::vector<uint8_t> frame = EncodeResponseFrame(rid, response);
        {
          std::lock_guard<std::mutex> lock(w->mu);
          w->completions.emplace_back(cid, std::move(frame));
        }
        if (w->event_fd >= 0) {
          const uint64_t tick = 1;
          ssize_t ignored = ::write(w->event_fd, &tick, sizeof(tick));
          (void)ignored;
        }
        if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(inflight_mu_);
          inflight_cv_.notify_all();
        }
      });
}

}  // namespace poe

// Blocking client for the wire protocol: connect, send request frames,
// read response frames. One instance drives ONE connection and is not
// thread-safe (a load generator runs one client per connection/thread).
//
// Two usage styles:
//   - Query(): one synchronous round trip (closed-loop traffic).
//   - Send()/Receive(): explicit pipelining - keep several requests in
//     flight on the connection and match responses by request_id
//     (responses come back in completion order, not send order).
//
// Transport failures surface as kUnavailable when the errno is one a
// retry might cure — ECONNREFUSED (peer not up yet), ECONNRESET / EPIPE
// (peer died mid-stream), EOF mid-frame, timeouts — so RetryWithBackoff
// applies uniformly to connect and mid-stream failures: a caller can wrap
// "reconnect + query" in one retry loop and both failure shapes take the
// same path. Errnos that repeating cannot fix (EBADF, EACCES, ...) are
// kIoError. Malformed response frames are protocol errors
// (kInvalidArgument / kCorruption for a CRC mismatch). Server-side
// statuses arrive INSIDE a well-formed response frame and are returned
// as WireResponse::status, not as a transport error.
#ifndef POE_NET_NET_CLIENT_H_
#define POE_NET_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"
#include "util/result.h"
#include "util/status.h"

namespace poe {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  Status Connect(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One blocking round trip. The returned WireResponse carries the
  /// server's status (which may itself be an error) when the frame
  /// exchange succeeded; a Result error means the exchange itself broke.
  Result<WireResponse> Query(const std::vector<int>& task_ids,
                             const Tensor& input, double deadline_ms = 0.0,
                             WirePrecision precision = WirePrecision::kAny);

  /// Pipelined send; returns the request_id to match the response by.
  Result<uint64_t> Send(const std::vector<int>& task_ids, const Tensor& input,
                        double deadline_ms = 0.0,
                        WirePrecision precision = WirePrecision::kAny);

  /// Blocks for the next response frame on the connection.
  Result<WireResponse> Receive();

  /// Sends raw bytes as-is - the protocol-robustness tests use this to
  /// put malformed frames on the wire.
  Status SendRaw(const void* data, size_t len);

  /// One generic frame round trip: writes a pre-sealed frame, reads one
  /// frame of `expected_type` back, verifies its body CRC. The cluster
  /// peer-RPC client drives its fetch-expert / membership-ping exchanges
  /// through this so every frame type shares one transport-error and
  /// framing discipline.
  Status Call(const std::vector<uint8_t>& frame, uint8_t expected_type,
              WireHeader* header, std::vector<uint8_t>* body);

  /// Caps recv/send blocking time (0 restores "block forever"). The
  /// cluster layer sets this to its per-fetch budget so a hung peer
  /// surfaces as a transient timeout instead of a stuck thread.
  Status SetIoTimeout(double timeout_ms);

 private:
  Status ReadFull(void* buf, size_t len);
  Status WriteFull(const void* buf, size_t len);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  uint32_t max_body_bytes_ = kDefaultMaxBodyBytes;
};

}  // namespace poe

#endif  // POE_NET_NET_CLIENT_H_

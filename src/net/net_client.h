// Blocking client for the wire protocol: connect, send request frames,
// read response frames. One instance drives ONE connection and is not
// thread-safe (a load generator runs one client per connection/thread).
//
// Two usage styles:
//   - Query(): one synchronous round trip (closed-loop traffic).
//   - Send()/Receive(): explicit pipelining - keep several requests in
//     flight on the connection and match responses by request_id
//     (responses come back in completion order, not send order).
//
// Transport failures (refused, reset, EOF mid-frame) surface as
// kUnavailable; malformed response frames as protocol errors
// (kInvalidArgument / kCorruption for a CRC mismatch). Server-side
// statuses arrive INSIDE a well-formed response frame and are returned
// as WireResponse::status, not as a transport error.
#ifndef POE_NET_NET_CLIENT_H_
#define POE_NET_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"
#include "util/result.h"
#include "util/status.h"

namespace poe {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  Status Connect(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One blocking round trip. The returned WireResponse carries the
  /// server's status (which may itself be an error) when the frame
  /// exchange succeeded; a Result error means the exchange itself broke.
  Result<WireResponse> Query(const std::vector<int>& task_ids,
                             const Tensor& input, double deadline_ms = 0.0,
                             WirePrecision precision = WirePrecision::kAny);

  /// Pipelined send; returns the request_id to match the response by.
  Result<uint64_t> Send(const std::vector<int>& task_ids, const Tensor& input,
                        double deadline_ms = 0.0,
                        WirePrecision precision = WirePrecision::kAny);

  /// Blocks for the next response frame on the connection.
  Result<WireResponse> Receive();

  /// Sends raw bytes as-is - the protocol-robustness tests use this to
  /// put malformed frames on the wire.
  Status SendRaw(const void* data, size_t len);

 private:
  Status ReadFull(void* buf, size_t len);
  Status WriteFull(const void* buf, size_t len);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  uint32_t max_body_bytes_ = kDefaultMaxBodyBytes;
};

}  // namespace poe

#endif  // POE_NET_NET_CLIENT_H_

// The binary wire protocol of the network serving front-end: compact
// length-prefixed frames with a magic+version header and a CRC32C body
// checksum, so truncation, garbage, and bit-flips are all detected at the
// framing layer before any payload bytes are trusted.
//
// Frame layout (all integers little-endian; this library targets x86-64
// and never byte-swaps - both ends of a connection run the same build):
//
//   header (24 bytes)
//     [ 0] u32  magic        'P' 'O' 'E' '1'
//     [ 4] u8   version      kWireVersion (2; v1 lacked the response
//                            generation field and is rejected)
//     [ 5] u8   type         1 = request, 2 = response
//     [ 6] u16  reserved     must be 0
//     [ 8] u32  body_len     bytes following the header (bounded)
//     [12] u32  body_crc     CRC32C over the body bytes
//     [16] u64  request_id   client-chosen correlation id, echoed back
//
//   request body = fixed meta (44 bytes) + task ids + payload
//     [ 0] f64  deadline_ms  <= 0 = no deadline
//     [ 8] u8   precision    0 = pool default, 1 = require f32,
//                            2 = require int8 (mismatch -> error reply)
//     [ 9] u8   ndim         must be 4
//     [10] u16  num_tasks    1 .. kMaxWireTasks
//     [12] i64  dims[4]      n, c, h, w
//     [44] i32  task_ids[num_tasks]
//     [..] f32  payload[n*c*h*w]   raw row-major input tensor
//
//   response body = fixed part (48 bytes) + message + result arrays
//     [ 0] i32  status_code  poe::StatusCode
//     [ 4] u8   precision    0 = f32, 1 = int8 (precision actually served)
//     [ 5] u8   trunk_degraded
//     [ 6] u16  degraded_branches
//     [ 8] f64  queue_ms     server-side queue wait
//     [16] f64  total_ms     server-side submit -> response
//     [24] u32  msg_len      status message bytes
//     [28] u32  num_classes  0 on error
//     [32] i64  rows         0 on error
//     [40] u64  generation   pool generation that served (0 on admission/
//                            protocol errors that never reached a model)
//     [48] char msg[msg_len]
//     [..] i32  global_classes[num_classes]
//     [..] i32  predictions[rows]
//     [..] f32  logits[rows * num_classes]
//
// Framing rules: a receiver reads exactly 24 header bytes, validates
// magic/version/type/body_len, then reads exactly body_len body bytes and
// verifies body_crc. Anything else - short read, oversized length, CRC
// mismatch, malformed meta - is a protocol error: the connection is
// closed (the server sends a final error response first when the header
// was sound enough to carry a request_id). Nothing is ever re-synced
// mid-stream; a framing error poisons the whole connection by design.
#ifndef POE_NET_WIRE_H_
#define POE_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/module.h"
#include "serve/inference_server.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace poe {

inline constexpr uint8_t kWireVersion = 2;
inline constexpr uint8_t kWireTypeRequest = 1;
inline constexpr uint8_t kWireTypeResponse = 2;
// Peer-RPC frame types of the cluster layer (src/cluster/peer_rpc.h).
// They ride the same 24-byte header + CRC32C framing; a NetServer that
// receives one closes the connection (unexpected type), so the data plane
// and the control plane cannot be confused for each other. Body layouts
// are owned by the cluster layer: the net layer only frames them.
//   3 = fetch-expert        (request: expert id)
//   4 = fetch-expert-reply  (status + classes + serialized module section)
//   5 = membership-ping     (sender's membership view — epoch gossip)
//   6 = membership-ping-reply (receiver's view after merging)
inline constexpr uint8_t kWireTypeFetchExpert = 3;
inline constexpr uint8_t kWireTypeFetchExpertReply = 4;
inline constexpr uint8_t kWireTypePing = 5;
inline constexpr uint8_t kWireTypePingReply = 6;
inline constexpr size_t kWireHeaderBytes = 24;
inline constexpr size_t kWireRequestMetaBytes = 44;
inline constexpr size_t kWireResponseFixedBytes = 48;
inline constexpr int kMaxWireTasks = 4096;
/// Default body-size bound (NetServer::Options can lower it). 64 MiB
/// bounds a request at ~16M f32 elements - far beyond any sane batch.
inline constexpr uint32_t kDefaultMaxBodyBytes = 64u << 20;

/// Returns the 4 magic bytes 'P','O','E','1' as a little-endian u32.
uint32_t WireMagic();

/// Per-request precision demand carried on the wire.
enum class WirePrecision : uint8_t {
  kAny = 0,   ///< serve at whatever precision the pool runs
  kFloat32 = 1,
  kInt8 = 2,
};

/// Parsed frame header.
struct WireHeader {
  uint8_t version = 0;
  uint8_t type = 0;
  uint32_t body_len = 0;
  uint32_t body_crc = 0;
  uint64_t request_id = 0;
};

/// Parsed request meta (everything before the payload floats).
struct WireRequestMeta {
  double deadline_ms = 0.0;
  WirePrecision precision = WirePrecision::kAny;
  int64_t dims[4] = {0, 0, 0, 0};
  uint16_t num_tasks = 0;

  int64_t payload_elems() const {
    return dims[0] * dims[1] * dims[2] * dims[3];
  }
  size_t task_bytes() const { return sizeof(int32_t) * num_tasks; }
  size_t payload_bytes() const {
    return sizeof(float) * static_cast<size_t>(payload_elems());
  }
};

/// A decoded response frame (the client-side mirror of
/// InferenceResponse, plus the correlation id).
struct WireResponse {
  uint64_t request_id = 0;
  Status status;
  Tensor logits;                    ///< [rows, num_classes]; empty on error
  std::vector<int> global_classes;
  std::vector<int> predictions;
  ServingPrecision precision = ServingPrecision::kFloat32;
  int degraded_branches = 0;
  bool trunk_degraded = false;
  double queue_ms = 0.0;
  double total_ms = 0.0;
  /// Pool generation that served this response (0 on errors that never
  /// reached a model). Lets clients observe live upgrades: the id advances
  /// in-place on the same connection when the server swaps pools.
  uint64_t generation = 0;
};

// ------------------------------------------------------------- encoding

/// Encodes a complete request frame (header + body, CRC filled in).
std::vector<uint8_t> EncodeRequestFrame(uint64_t request_id,
                                        const std::vector<int>& task_ids,
                                        const Tensor& input,
                                        double deadline_ms,
                                        WirePrecision precision);

/// Encodes a complete response frame from a served InferenceResponse.
std::vector<uint8_t> EncodeResponseFrame(uint64_t request_id,
                                         const InferenceResponse& response);

/// Encodes a bare error response frame (no logits), used for protocol and
/// admission errors that never reached the inference server.
std::vector<uint8_t> EncodeErrorFrame(uint64_t request_id,
                                      const Status& status);

/// Seals a frame whose body was appended after a kWireHeaderBytes-sized
/// prefix: writes magic/version/type/body_len/body_crc/request_id into the
/// prefix. The peer-RPC codecs build their bodies with this so every frame
/// type shares ONE header format and CRC discipline.
void SealWireFrame(std::vector<uint8_t>& frame, uint8_t type,
                   uint64_t request_id);

// ------------------------------------------------------------- decoding

/// Parses and validates 24 header bytes. `max_body_bytes` bounds
/// body_len; `expected_type` is kWireTypeRequest or kWireTypeResponse.
Status DecodeHeader(const uint8_t* data, size_t len, uint8_t expected_type,
                    uint32_t max_body_bytes, WireHeader* out);

/// Parses and validates the 44 fixed request-meta bytes against the
/// header's body_len (the meta fully determines the expected body size:
/// 44 + 4*num_tasks + 4*numel must equal body_len).
Status DecodeRequestMeta(const uint8_t* data, size_t len,
                         const WireHeader& header, WireRequestMeta* out);

/// Decodes a full response body (everything after the header). The body
/// CRC must already have been verified by the caller.
Status DecodeResponseBody(const uint8_t* data, size_t len,
                          const WireHeader& header, WireResponse* out);

}  // namespace poe

#endif  // POE_NET_WIRE_H_

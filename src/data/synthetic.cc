#include "data/synthetic.h"

#include <cmath>
#include <vector>

#include "util/logging.h"

namespace poe {

SyntheticDataConfig Cifar100LikeConfig() {
  SyntheticDataConfig cfg;
  cfg.name = "cifar100-like";
  cfg.num_tasks = 20;
  cfg.classes_per_task = 5;
  cfg.train_per_class = 40;
  cfg.test_per_class = 10;
  // Calibrated so (a) the oracle lands in the paper's accuracy regime,
  // (b) superclass structure dominates (library-friendly), and (c) fine
  // class distinctions are subtle enough that compressing ALL of them into
  // a tiny generic model (the KD baseline) fails, as in the paper.
  cfg.super_weight = 1.0f;
  cfg.class_weight = 0.7f;
  cfg.noise = 1.0f;
  cfg.seed = 20210620;
  return cfg;
}

SyntheticDataConfig TinyImageNetLikeConfig() {
  SyntheticDataConfig cfg;
  cfg.name = "tiny-imagenet-like";
  cfg.num_tasks = 25;
  cfg.classes_per_task = 8;
  cfg.train_per_class = 24;
  cfg.test_per_class = 8;
  cfg.super_weight = 1.0f;
  cfg.class_weight = 0.7f;
  cfg.noise = 1.0f;
  cfg.seed = 20210625;
  return cfg;
}

namespace {

/// Smooth random prototype: low-resolution gaussian field upsampled
/// bilinearly, so the signal has the local spatial correlations that
/// convolutions exploit.
Tensor SmoothPrototype(int channels, int height, int width, Rng& rng) {
  const int lh = std::max(2, height / 2);
  const int lw = std::max(2, width / 2);
  Tensor low = Tensor::Randn({channels, lh, lw}, rng);
  Tensor out({channels, static_cast<int64_t>(height),
              static_cast<int64_t>(width)});
  const float* lp = low.data();
  float* op = out.data();
  for (int c = 0; c < channels; ++c) {
    for (int y = 0; y < height; ++y) {
      const float fy = static_cast<float>(y) * (lh - 1) / (height - 1);
      const int y0 = static_cast<int>(fy);
      const int y1 = std::min(y0 + 1, lh - 1);
      const float wy = fy - y0;
      for (int x = 0; x < width; ++x) {
        const float fx = static_cast<float>(x) * (lw - 1) / (width - 1);
        const int x0 = static_cast<int>(fx);
        const int x1 = std::min(x0 + 1, lw - 1);
        const float wx = fx - x0;
        const float v00 = lp[(c * lh + y0) * lw + x0];
        const float v01 = lp[(c * lh + y0) * lw + x1];
        const float v10 = lp[(c * lh + y1) * lw + x0];
        const float v11 = lp[(c * lh + y1) * lw + x1];
        op[(c * height + y) * width + x] =
            (1 - wy) * ((1 - wx) * v00 + wx * v01) +
            wy * ((1 - wx) * v10 + wx * v11);
      }
    }
  }
  return out;
}

/// Writes one sample into `dst`: mixed prototypes, circular shift, noise.
void RenderSample(const Tensor& super_proto, const Tensor& class_proto,
                  const SyntheticDataConfig& cfg, Rng& rng, float* dst) {
  const int c = cfg.channels, h = cfg.height, w = cfg.width;
  const int dy =
      cfg.jitter > 0 ? static_cast<int>(rng.NextInt(2 * cfg.jitter + 1)) -
                           cfg.jitter
                     : 0;
  const int dx =
      cfg.jitter > 0 ? static_cast<int>(rng.NextInt(2 * cfg.jitter + 1)) -
                           cfg.jitter
                     : 0;
  const float* sp = super_proto.data();
  const float* cp = class_proto.data();
  for (int ch = 0; ch < c; ++ch) {
    for (int y = 0; y < h; ++y) {
      const int sy = ((y + dy) % h + h) % h;
      for (int x = 0; x < w; ++x) {
        const int sx = ((x + dx) % w + w) % w;
        const float base = cfg.super_weight * sp[(ch * h + sy) * w + sx] +
                           cfg.class_weight * cp[(ch * h + sy) * w + sx];
        dst[(ch * h + y) * w + x] = base + rng.Normal(0.0f, cfg.noise);
      }
    }
  }
}

}  // namespace

SyntheticDataset GenerateSyntheticDataset(const SyntheticDataConfig& cfg) {
  POE_CHECK_GT(cfg.num_tasks, 0);
  POE_CHECK_GT(cfg.classes_per_task, 0);
  POE_CHECK_GE(cfg.height, 4);
  POE_CHECK_GE(cfg.width, 4);

  SyntheticDataset out;
  out.config = cfg;
  out.hierarchy = ClassHierarchy::Uniform(cfg.num_tasks, cfg.classes_per_task);

  Rng proto_rng(cfg.seed);
  std::vector<Tensor> super_protos;
  super_protos.reserve(cfg.num_tasks);
  for (int t = 0; t < cfg.num_tasks; ++t) {
    super_protos.push_back(
        SmoothPrototype(cfg.channels, cfg.height, cfg.width, proto_rng));
  }
  const int num_classes = cfg.num_classes();
  std::vector<Tensor> class_protos;
  class_protos.reserve(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    class_protos.push_back(
        SmoothPrototype(cfg.channels, cfg.height, cfg.width, proto_rng));
  }

  const int64_t image_size =
      static_cast<int64_t>(cfg.channels) * cfg.height * cfg.width;
  auto render_split = [&](int per_class, uint64_t salt) {
    Dataset d;
    const int64_t n = static_cast<int64_t>(per_class) * num_classes;
    d.images = Tensor({n, cfg.channels, cfg.height, cfg.width});
    d.labels.resize(n);
    Rng rng(cfg.seed ^ salt);
    int64_t row = 0;
    for (int c = 0; c < num_classes; ++c) {
      const int task = out.hierarchy.task_of_class(c);
      for (int i = 0; i < per_class; ++i, ++row) {
        RenderSample(super_protos[task], class_protos[c], cfg, rng,
                     d.images.data() + row * image_size);
        d.labels[row] = c;
      }
    }
    return d;
  };

  out.train = render_split(cfg.train_per_class, 0x7261696eULL);  // "rain"
  out.test = render_split(cfg.test_per_class, 0x74657374ULL);    // "test"
  return out;
}

}  // namespace poe

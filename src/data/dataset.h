// In-memory labeled image dataset and subset/batching utilities.
#ifndef POE_DATA_DATASET_H_
#define POE_DATA_DATASET_H_

#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace poe {

/// A dense dataset: images [N, C, H, W] plus integer labels.
/// Labels are global class ids unless a remapping subset was taken.
struct Dataset {
  Tensor images;
  std::vector<int> labels;

  int64_t size() const { return static_cast<int64_t>(labels.size()); }
};

/// Keeps only samples whose label is in `classes`. When `remap`, labels are
/// rewritten to the index of the class within `classes` (the local label
/// space a specialized model is trained on).
Dataset FilterClasses(const Dataset& data, const std::vector<int>& classes,
                      bool remap);

/// Keeps only samples whose label is NOT in `classes` (out-of-distribution
/// samples for the confidence analysis of Figure 5). Labels stay global.
Dataset ExcludeClasses(const Dataset& data, const std::vector<int>& classes);

/// One minibatch.
struct Batch {
  Tensor images;
  std::vector<int> labels;
  std::vector<int64_t> indices;  ///< source rows in the parent dataset
};

/// Yields shuffled minibatches over a dataset, reshuffling every epoch.
class BatchIterator {
 public:
  BatchIterator(const Dataset& data, int64_t batch_size, Rng& rng,
                bool shuffle = true);

  /// Starts a new epoch (reshuffles when enabled).
  void Reset();

  /// Fills `batch` with the next minibatch; returns false at epoch end.
  bool Next(Batch* batch);

  int64_t batches_per_epoch() const;

 private:
  const Dataset& data_;
  int64_t batch_size_;
  Rng& rng_;
  bool shuffle_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
};

}  // namespace poe

#endif  // POE_DATA_DATASET_H_

// Two-level class hierarchy: classes grouped into primitive tasks.
#ifndef POE_DATA_HIERARCHY_H_
#define POE_DATA_HIERARCHY_H_

#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace poe {

/// The paper's task structure (Section 3): the oracle class set C is
/// partitioned into n primitive tasks H_1..H_n (superclasses). A composite
/// task Q is a union of primitive tasks.
class ClassHierarchy {
 public:
  ClassHierarchy() = default;

  /// Builds a hierarchy of `num_tasks` primitive tasks with
  /// `classes_per_task` classes each; class ids are assigned contiguously.
  static ClassHierarchy Uniform(int num_tasks, int classes_per_task);

  /// Builds from an explicit partition; validates that tasks are disjoint,
  /// non-empty, and cover 0..num_classes-1.
  static Result<ClassHierarchy> FromTasks(
      std::vector<std::vector<int>> tasks);

  int num_classes() const { return num_classes_; }
  int num_tasks() const { return static_cast<int>(tasks_.size()); }

  /// Global class ids of primitive task `t`.
  const std::vector<int>& task_classes(int t) const;

  /// Primitive task containing class `c`.
  int task_of_class(int c) const;

  /// Union of the class lists of `task_ids`, in task order. A composite
  /// task Q in the paper's notation.
  std::vector<int> CompositeClasses(const std::vector<int>& task_ids) const;

  /// All task ids [0, num_tasks).
  std::vector<int> AllTaskIds() const;

 private:
  std::vector<std::vector<int>> tasks_;
  std::vector<int> class_to_task_;
  int num_classes_ = 0;
};

}  // namespace poe

#endif  // POE_DATA_HIERARCHY_H_

#include "data/dataset.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "tensor/ops.h"
#include "util/logging.h"

namespace poe {

Dataset FilterClasses(const Dataset& data, const std::vector<int>& classes,
                      bool remap) {
  std::unordered_map<int, int> local_index;
  for (size_t i = 0; i < classes.size(); ++i) {
    local_index.emplace(classes[i], static_cast<int>(i));
  }
  std::vector<int64_t> keep;
  std::vector<int> labels;
  for (int64_t i = 0; i < data.size(); ++i) {
    auto it = local_index.find(data.labels[i]);
    if (it == local_index.end()) continue;
    keep.push_back(i);
    labels.push_back(remap ? it->second : data.labels[i]);
  }
  Dataset out;
  out.images = GatherRows(data.images, keep);
  out.labels = std::move(labels);
  return out;
}

Dataset ExcludeClasses(const Dataset& data,
                       const std::vector<int>& classes) {
  std::unordered_set<int> excluded(classes.begin(), classes.end());
  std::vector<int64_t> keep;
  std::vector<int> labels;
  for (int64_t i = 0; i < data.size(); ++i) {
    if (excluded.count(data.labels[i]) > 0) continue;
    keep.push_back(i);
    labels.push_back(data.labels[i]);
  }
  Dataset out;
  out.images = GatherRows(data.images, keep);
  out.labels = std::move(labels);
  return out;
}

BatchIterator::BatchIterator(const Dataset& data, int64_t batch_size,
                             Rng& rng, bool shuffle)
    : data_(data), batch_size_(batch_size), rng_(rng), shuffle_(shuffle) {
  POE_CHECK_GT(batch_size, 0);
  order_.resize(data.size());
  for (int64_t i = 0; i < data.size(); ++i) order_[i] = i;
  Reset();
}

void BatchIterator::Reset() {
  cursor_ = 0;
  if (shuffle_) rng_.Shuffle(order_);
}

bool BatchIterator::Next(Batch* batch) {
  POE_CHECK(batch != nullptr);
  if (cursor_ >= data_.size()) return false;
  const int64_t end = std::min(cursor_ + batch_size_, data_.size());
  batch->indices.assign(order_.begin() + cursor_, order_.begin() + end);
  batch->images = GatherRows(data_.images, batch->indices);
  batch->labels.resize(batch->indices.size());
  for (size_t i = 0; i < batch->indices.size(); ++i) {
    batch->labels[i] = data_.labels[batch->indices[i]];
  }
  cursor_ = end;
  return true;
}

int64_t BatchIterator::batches_per_epoch() const {
  return (data_.size() + batch_size_ - 1) / batch_size_;
}

}  // namespace poe

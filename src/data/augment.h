// Offline data augmentation: shifted/flipped copies of a training set.
#ifndef POE_DATA_AUGMENT_H_
#define POE_DATA_AUGMENT_H_

#include "data/dataset.h"
#include "util/rng.h"

namespace poe {

/// Standard tiny-image augmentation recipe.
struct AugmentConfig {
  int copies = 1;          ///< augmented copies appended per sample
  int max_shift = 1;       ///< random translation in pixels (zero-padded)
  bool horizontal_flip = true;
  float noise = 0.0f;      ///< additive gaussian noise stddev
};

/// Returns the original dataset plus `copies` augmented variants of every
/// sample (size = (1 + copies) * input size). Deterministic given `rng`.
Dataset AugmentDataset(const Dataset& data, const AugmentConfig& config,
                       Rng& rng);

/// Translates one image by (dy, dx) with zero padding (helper, exposed for
/// tests). `shape` is {C, H, W}.
void ShiftImage(const float* src, float* dst, int64_t channels, int64_t h,
                int64_t w, int dy, int dx);

/// Horizontally mirrors one image.
void FlipImage(const float* src, float* dst, int64_t channels, int64_t h,
               int64_t w);

}  // namespace poe

#endif  // POE_DATA_AUGMENT_H_

// Hierarchical synthetic image generator (CIFAR-100 / Tiny-ImageNet stand-in).
#ifndef POE_DATA_SYNTHETIC_H_
#define POE_DATA_SYNTHETIC_H_

#include <string>

#include "data/dataset.h"
#include "data/hierarchy.h"
#include "tensor/tensor.h"

namespace poe {

/// Parameters of the generative model. Each superclass (= primitive task)
/// owns a smooth random prototype; each class adds its own smooth
/// prototype. A sample is
///
///   x = super_weight * P_super + class_weight * P_class
///       (random circular shift up to `jitter` pixels) + N(0, noise^2)
///
/// which gives convolution-learnable structure shared within a superclass
/// (what the PoE library should capture) and class-specific detail (what an
/// expert must capture). `noise` controls task difficulty.
struct SyntheticDataConfig {
  std::string name = "synthetic";
  int num_tasks = 20;
  int classes_per_task = 5;
  int channels = 3;
  int height = 8;
  int width = 8;
  int train_per_class = 24;
  int test_per_class = 10;
  float super_weight = 0.8f;
  float class_weight = 1.0f;
  float noise = 0.55f;
  int jitter = 2;
  uint64_t seed = 1234;

  int num_classes() const { return num_tasks * classes_per_task; }
};

/// Mirrors CIFAR-100: 20 superclasses x 5 classes.
SyntheticDataConfig Cifar100LikeConfig();

/// Mirrors Tiny-ImageNet: 200 classes in ~34 semantic groups (we use 25
/// groups x 8 classes for an even partition).
SyntheticDataConfig TinyImageNetLikeConfig();

/// A generated benchmark: hierarchy plus train/test splits with global
/// class labels.
struct SyntheticDataset {
  SyntheticDataConfig config;
  ClassHierarchy hierarchy;
  Dataset train;
  Dataset test;
};

/// Deterministically generates a dataset from `config`.
SyntheticDataset GenerateSyntheticDataset(const SyntheticDataConfig& config);

}  // namespace poe

#endif  // POE_DATA_SYNTHETIC_H_

#include "data/augment.h"

#include <cstring>
#include <vector>

#include "util/logging.h"

namespace poe {

void ShiftImage(const float* src, float* dst, int64_t channels, int64_t h,
                int64_t w, int dy, int dx) {
  for (int64_t c = 0; c < channels; ++c) {
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        const int64_t sy = y - dy;
        const int64_t sx = x - dx;
        dst[(c * h + y) * w + x] =
            (sy >= 0 && sy < h && sx >= 0 && sx < w)
                ? src[(c * h + sy) * w + sx]
                : 0.0f;
      }
    }
  }
}

void FlipImage(const float* src, float* dst, int64_t channels, int64_t h,
               int64_t w) {
  for (int64_t c = 0; c < channels; ++c) {
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        dst[(c * h + y) * w + x] = src[(c * h + y) * w + (w - 1 - x)];
      }
    }
  }
}

Dataset AugmentDataset(const Dataset& data, const AugmentConfig& config,
                       Rng& rng) {
  POE_CHECK_GE(config.copies, 0);
  POE_CHECK_EQ(data.images.ndim(), 4);
  const int64_t n = data.size();
  const int64_t channels = data.images.dim(1);
  const int64_t h = data.images.dim(2);
  const int64_t w = data.images.dim(3);
  const int64_t image_size = channels * h * w;

  Dataset out;
  out.images = Tensor({n * (1 + config.copies), channels, h, w});
  out.labels.reserve(n * (1 + config.copies));

  // Originals first.
  std::memcpy(out.images.data(), data.images.data(),
              sizeof(float) * data.images.numel());
  out.labels = data.labels;

  std::vector<float> scratch(image_size);
  int64_t row = n;
  for (int copy = 0; copy < config.copies; ++copy) {
    for (int64_t i = 0; i < n; ++i, ++row) {
      const float* src = data.images.data() + i * image_size;
      float* dst = out.images.data() + row * image_size;
      const int dy =
          config.max_shift > 0
              ? static_cast<int>(rng.NextInt(2 * config.max_shift + 1)) -
                    config.max_shift
              : 0;
      const int dx =
          config.max_shift > 0
              ? static_cast<int>(rng.NextInt(2 * config.max_shift + 1)) -
                    config.max_shift
              : 0;
      ShiftImage(src, dst, channels, h, w, dy, dx);
      if (config.horizontal_flip && rng.NextInt(2) == 1) {
        std::memcpy(scratch.data(), dst, sizeof(float) * image_size);
        FlipImage(scratch.data(), dst, channels, h, w);
      }
      if (config.noise > 0.0f) {
        for (int64_t j = 0; j < image_size; ++j) {
          dst[j] += rng.Normal(0.0f, config.noise);
        }
      }
      out.labels.push_back(data.labels[i]);
    }
  }
  return out;
}

}  // namespace poe

#include "data/hierarchy.h"

#include <algorithm>

#include "util/logging.h"

namespace poe {

ClassHierarchy ClassHierarchy::Uniform(int num_tasks, int classes_per_task) {
  POE_CHECK_GT(num_tasks, 0);
  POE_CHECK_GT(classes_per_task, 0);
  std::vector<std::vector<int>> tasks(num_tasks);
  int next = 0;
  for (int t = 0; t < num_tasks; ++t) {
    for (int i = 0; i < classes_per_task; ++i) tasks[t].push_back(next++);
  }
  auto result = FromTasks(std::move(tasks));
  POE_CHECK(result.ok());
  return std::move(result).ValueOrDie();
}

Result<ClassHierarchy> ClassHierarchy::FromTasks(
    std::vector<std::vector<int>> tasks) {
  if (tasks.empty()) {
    return Status::InvalidArgument("hierarchy needs at least one task");
  }
  int num_classes = 0;
  for (const auto& t : tasks) {
    if (t.empty()) {
      return Status::InvalidArgument("primitive task must be non-empty");
    }
    num_classes += static_cast<int>(t.size());
  }
  std::vector<int> class_to_task(num_classes, -1);
  for (size_t t = 0; t < tasks.size(); ++t) {
    for (int c : tasks[t]) {
      if (c < 0 || c >= num_classes) {
        return Status::InvalidArgument(
            "class id out of range; tasks must partition 0..N-1");
      }
      if (class_to_task[c] != -1) {
        return Status::InvalidArgument("tasks must be disjoint");
      }
      class_to_task[c] = static_cast<int>(t);
    }
  }
  ClassHierarchy h;
  h.tasks_ = std::move(tasks);
  h.class_to_task_ = std::move(class_to_task);
  h.num_classes_ = num_classes;
  return h;
}

const std::vector<int>& ClassHierarchy::task_classes(int t) const {
  POE_CHECK_GE(t, 0);
  POE_CHECK_LT(t, num_tasks());
  return tasks_[t];
}

int ClassHierarchy::task_of_class(int c) const {
  POE_CHECK_GE(c, 0);
  POE_CHECK_LT(c, num_classes_);
  return class_to_task_[c];
}

std::vector<int> ClassHierarchy::CompositeClasses(
    const std::vector<int>& task_ids) const {
  std::vector<int> classes;
  for (int t : task_ids) {
    const auto& tc = task_classes(t);
    classes.insert(classes.end(), tc.begin(), tc.end());
  }
  return classes;
}

std::vector<int> ClassHierarchy::AllTaskIds() const {
  std::vector<int> ids(num_tasks());
  for (int t = 0; t < num_tasks(); ++t) ids[t] = t;
  return ids;
}

}  // namespace poe

// Consistent-hash expert placement: which nodes own which experts.
//
// The ring is built from the CONFIGURED node ids only — never from node
// states — so every node computes the identical owner list for every
// expert regardless of what it currently believes about peer liveness.
// State enters one layer up: fetch routing walks the owner list and picks
// the first owner whose membership state CanServeFetches(); placement
// itself is a pure function.
//
// Each node projects `vnodes` points onto a 64-bit ring (splitmix64 of
// node_id x vnode_index); an expert hashes to a ring position and its
// owners are the first `replication` DISTINCT nodes clockwise. Virtual
// nodes smooth the load: with 16 points per node the heaviest node of a
// small pool carries within ~2x of the mean instead of the ~n x skew a
// single point per node can produce.
#ifndef POE_CLUSTER_PLACEMENT_H_
#define POE_CLUSTER_PLACEMENT_H_

#include <vector>

namespace poe {

struct PlacementConfig {
  /// Distinct owner nodes per expert. owners[0] is the primary; later
  /// entries are replicas a fetch falls back to. Clamped to the pool size.
  int replication = 2;
  /// Ring points per node. More points = smoother balance, linearly more
  /// ring to sort (done once per owner lookup; node counts are tiny).
  int vnodes = 16;
};

/// Owner nodes of `expert_id`, primary first. `node_ids` is the stable
/// set of configured ids (MembershipView::NodeIds()); order does not
/// matter — the ring position of a node depends only on its id. Returns
/// empty when `node_ids` is empty.
std::vector<int> ExpertOwners(int expert_id, const std::vector<int>& node_ids,
                              const PlacementConfig& config);

}  // namespace poe

#endif  // POE_CLUSTER_PLACEMENT_H_

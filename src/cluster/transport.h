// PeerTransport: how a ClusterNode talks to its peers.
//
// Two implementations with one contract:
//   - LoopbackTransport (here): in-process pool of nodes. FetchExpert
//     hands over the peer's master module SHARED POINTER — zero
//     serialization, zero copies — so single-process multi-node tests and
//     the in-process demo pay nothing for the abstraction.
//   - WireTransport (peer_rpc.h): TCP via the wire protocol's framing
//     (frame types 3-6). The fetched expert arrives as its v3 section
//     payload and is rebuilt into a fresh master.
//
// Error contract shared by both: a dead/refusing/crashed peer is
// kUnavailable (transient — the fetch path tries the next owner and the
// pool-level RetryWithBackoff re-enters); a malformed payload is
// kCorruption (permanent — poisons the local slot).
#ifndef POE_CLUSTER_TRANSPORT_H_
#define POE_CLUSTER_TRANSPORT_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "cluster/membership.h"
#include "nn/sequential.h"
#include "util/result.h"

namespace poe {

/// What a fetch-expert exchange yields. Exactly one of `module` (loopback:
/// the peer's master, aliased) or `payload` (wire: v3 section bytes to
/// rebuild from) is filled.
struct FetchExpertResult {
  int expert_id = -1;
  std::shared_ptr<Sequential> module;  ///< loopback path
  std::string payload;                 ///< wire path (v3 section bytes)
};

/// The server half a node exposes to transports. ClusterNode implements
/// this; LoopbackTransport dispatches to it directly and PeerServer
/// dispatches decoded wire frames to it.
class PeerEndpoint {
 public:
  virtual ~PeerEndpoint() = default;
  /// Answers a fetch: kUnavailable when the expert is not resident here
  /// (or the node cannot serve fetches in its current state).
  /// `want_payload` selects serialized bytes (wire) over the module
  /// pointer (loopback).
  virtual Result<FetchExpertResult> ServeFetchExpert(int expert_id,
                                                     bool want_payload) = 0;
  /// Membership ping: merges the sender's view (epoch 0 = pure probe) and
  /// returns this node's (possibly updated) view.
  virtual Result<MembershipView> ServePing(const MembershipView& view) = 0;
};

class PeerTransport {
 public:
  virtual ~PeerTransport() = default;
  virtual Result<FetchExpertResult> FetchExpert(int node_id,
                                                int expert_id) = 0;
  virtual Result<MembershipView> Ping(int node_id,
                                      const MembershipView& view) = 0;
};

/// In-process transport: a registry of endpoints keyed by node id.
/// Crash(id) makes a node unreachable (every call kUnavailable) without
/// destroying it — the test-side stand-in for SIGKILL; Revive(id) brings
/// it back, modeling a restart.
class LoopbackTransport : public PeerTransport {
 public:
  void Register(int node_id, PeerEndpoint* endpoint);
  void Unregister(int node_id);
  void Crash(int node_id);
  void Revive(int node_id);

  Result<FetchExpertResult> FetchExpert(int node_id, int expert_id) override;
  Result<MembershipView> Ping(int node_id,
                              const MembershipView& view) override;

 private:
  /// nullptr when crashed/unknown; kUnavailable either way (a crashed
  /// node and a never-started one look identical from outside).
  PeerEndpoint* Resolve(int node_id);

  std::mutex mu_;
  std::map<int, PeerEndpoint*> endpoints_;
  std::set<int> crashed_;
};

}  // namespace poe

#endif  // POE_CLUSTER_TRANSPORT_H_

// PoolMembership: the explicit node-lifecycle state machine of the
// distributed expert pool, following the persistent pool-machine pattern
// (every state change is an explicit, versioned transition; observers
// converge on the highest-epoch view) adapted to the epoll/wire stack.
//
// Node states and legal transitions:
//
//     ONLINE ──drain──> DRAINING ──complete/crash──> OFFLINE
//       │                                               │
//       └────────────crash detected──────> OFFLINE      │ join
//                                                       v
//     ONLINE <──recovered── REINTEGRATING <─────────────┘
//                    │
//                    └──failed──> OFFLINE
//
// Semantics per state:
//   ONLINE        serves queries and answers peer fetches.
//   DRAINING      answers peer fetches (its experts are still the owned
//                 copies) but operators route new traffic elsewhere; the
//                 admin took it down on purpose and will mark it OFFLINE
//                 when its queues are empty.
//   OFFLINE       unreachable (crashed or drained out). Placement skips
//                 it; fetches go to the replica owner or fail degraded.
//   REINTEGRATING back in the pool but warming up (reloading its pool
//                 file). It is NOT yet fetched from; the node itself
//                 promotes to ONLINE once it serves again.
//
// Epochs: every accepted transition (and every AddNode) bumps a uint64
// epoch. Views gossip whole: a receiver adopts a strictly newer view
// wholesale and ignores older ones — there is no per-field merge, so two
// nodes can never splice incompatible views together. Equal-epoch
// divergence (two nodes transitioned concurrently) is resolved by a
// deterministic fingerprint tie-break so the pool still converges.
#ifndef POE_CLUSTER_MEMBERSHIP_H_
#define POE_CLUSTER_MEMBERSHIP_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace poe {

enum class NodeState : uint8_t {
  kOnline = 0,
  kDraining = 1,
  kOffline = 2,
  kReintegrating = 3,
};

const char* NodeStateName(NodeState state);

/// True when the pool state machine allows `from` -> `to` (see the
/// diagram above). Self-transitions are not legal: an accepted transition
/// must change the view, because it burns an epoch.
bool ValidTransition(NodeState from, NodeState to);

/// A node can answer fetch-expert RPCs in these states. REINTEGRATING is
/// deliberately excluded: the node is warming up and its store may not be
/// loaded yet.
inline bool CanServeFetches(NodeState state) {
  return state == NodeState::kOnline || state == NodeState::kDraining;
}

struct NodeInfo {
  int node_id = -1;
  std::string host;   ///< peer-RPC address (the demo uses 127.0.0.1)
  int peer_port = 0;  ///< fetch-expert / membership-ping listener
  int serve_port = 0; ///< client data-plane (NetServer) port, informational
  NodeState state = NodeState::kOnline;
};

/// A versioned snapshot of the whole pool. Views are gossiped and adopted
/// wholesale; `epoch` totally orders them (ties broken by Fingerprint).
struct MembershipView {
  uint64_t epoch = 0;
  std::vector<NodeInfo> nodes;  ///< sorted by node_id, unique ids

  const NodeInfo* Find(int node_id) const;
  /// Node ids in view order (the stable input of placement).
  std::vector<int> NodeIds() const;
  /// Deterministic content hash (ports, states, epoch, hosts). Equal-epoch
  /// divergent views adopt the SMALLER fingerprint on both sides, so
  /// concurrent transitions cannot leave the pool split forever.
  uint64_t Fingerprint() const;
  std::string ToString() const;
};

/// Thread-safe holder of this node's view plus the transition rules.
class PoolMembership {
 public:
  /// `initial.epoch` is forced to at least 1 (epoch 0 means "no view" on
  /// the wire and is never adopted).
  explicit PoolMembership(MembershipView initial);

  MembershipView View() const;
  uint64_t epoch() const;

  /// Applies one state transition and bumps the epoch. InvalidArgument on
  /// an unknown node, FailedPrecondition on an illegal transition.
  Status Transition(int node_id, NodeState to);

  /// Adds a node (any state) and bumps the epoch; AlreadyExists if the id
  /// is taken.
  Status AddNode(NodeInfo node);

  /// Gossip merge: adopts `remote` when it is strictly newer, or when
  /// epochs are equal but `remote`'s fingerprint is smaller (the
  /// deterministic tie-break). Returns true when the local view changed.
  /// Epoch-0 views are status probes and never adopted.
  bool MergeView(const MembershipView& remote);

  /// Local transitions applied (not counting merges) — telemetry.
  int64_t transitions() const;

 private:
  mutable std::mutex mu_;
  MembershipView view_;
  int64_t transitions_ = 0;
};

}  // namespace poe

#endif  // POE_CLUSTER_MEMBERSHIP_H_

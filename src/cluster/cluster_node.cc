#include "cluster/cluster_node.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/serialization.h"
#include "models/wrn.h"
#include "util/fault.h"
#include "util/rng.h"

namespace poe {

ClusterNode::ClusterNode(ExpertPool pool, MembershipView initial,
                         ClusterNodeOptions options)
    : options_(std::move(options)),
      membership_(std::move(initial)),
      // The service is constructed on the FULL pool — its generation
      // fingerprints every master — and only Start() sheds non-owned
      // masters afterwards. Shedding first would fingerprint null modules.
      service_(std::move(pool), options_.cache_capacity, options_.precision),
      server_(&service_, options_.serve) {}

ClusterNode::~ClusterNode() { Stop(); }

void ClusterNode::SetTransport(PeerTransport* transport) {
  transport_ = transport;
}

Status ClusterNode::Start() {
  if (transport_ == nullptr) {
    return Status::FailedPrecondition("no peer transport installed");
  }
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("already started");
  }
  if (membership_.View().Find(options_.node_id) == nullptr) {
    return Status::InvalidArgument("node " + std::to_string(options_.node_id) +
                                   " is not in its own membership view");
  }
  const std::shared_ptr<ExpertStore>& store =
      service_.pool().expert_store();
  store->SetRemoteMaterializer(
      [this](int task_id) { return FetchExpertModule(task_id); });
  if (options_.shed_non_owned) {
    const int num_experts = service_.pool().num_experts();
    for (int t = 0; t < num_experts; ++t) {
      if (!OwnsExpert(t)) POE_RETURN_NOT_OK(store->ReleaseMaster(t));
    }
  }
  if (options_.start_gossip && options_.gossip_interval_ms > 0) {
    std::lock_guard<std::mutex> lock(gossip_mu_);
    stop_gossip_ = false;
    gossip_thread_ = std::thread([this] { GossipLoop(); });
  }
  return Status::OK();
}

void ClusterNode::Stop() {
  {
    std::lock_guard<std::mutex> lock(gossip_mu_);
    stop_gossip_ = true;
  }
  gossip_cv_.notify_all();
  if (gossip_thread_.joinable()) gossip_thread_.join();
  server_.Shutdown();
}

bool ClusterNode::OwnsExpert(int expert_id) const {
  const std::vector<int> owners = ExpertOwners(
      expert_id, membership_.View().NodeIds(), options_.placement);
  return std::find(owners.begin(), owners.end(), options_.node_id) !=
         owners.end();
}

std::vector<int> ClusterNode::OwnedExperts() const {
  std::vector<int> owned;
  const int num_experts = service_.pool().num_experts();
  for (int t = 0; t < num_experts; ++t) {
    if (OwnsExpert(t)) owned.push_back(t);
  }
  return owned;
}

NodeState ClusterNode::SelfState() const {
  const MembershipView view = membership_.View();
  const NodeInfo* self = view.Find(options_.node_id);
  return self != nullptr ? self->state : NodeState::kOffline;
}

Status ClusterNode::RequestTransition(int node_id, NodeState to) {
  return membership_.Transition(node_id, to);
}

Result<FetchExpertResult> ClusterNode::ServeFetchExpert(int expert_id,
                                                        bool want_payload) {
  if (!CanServeFetches(SelfState())) {
    return Status::Unavailable(
        "node " + std::to_string(options_.node_id) +
        " cannot serve fetches in state " + NodeStateName(SelfState()));
  }
  const ExpertPool& pool = service_.pool();
  if (expert_id < 0 || expert_id >= pool.num_experts()) {
    return Status::InvalidArgument("no such expert: " +
                                   std::to_string(expert_id));
  }
  if (!pool.expert_store()->resident(expert_id)) {
    return Status::Unavailable("expert " + std::to_string(expert_id) +
                               " is not resident on node " +
                               std::to_string(options_.node_id));
  }
  const std::shared_ptr<Sequential> master = pool.expert(expert_id);
  if (master == nullptr) {
    return Status::Unavailable("expert " + std::to_string(expert_id) +
                               " was shed concurrently");
  }
  FetchExpertResult result;
  result.expert_id = expert_id;
  if (want_payload) {
    POE_ASSIGN_OR_RETURN(result.payload, SerializeModulePayload(*master));
  } else {
    result.module = master;
  }
  peer_fetches_served_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

Result<MembershipView> ClusterNode::ServePing(const MembershipView& view) {
  if (membership_.MergeView(view)) {
    gossip_merges_.fetch_add(1, std::memory_order_relaxed);
    DefendSelf();
  }
  return membership_.View();
}

Result<std::shared_ptr<Sequential>> ClusterNode::FetchExpertModule(
    int task_id) {
  remote_fetch_requests_.fetch_add(1, std::memory_order_relaxed);
  const Status fault = PoeFaultHit("cluster.fetch");
  if (!fault.ok()) {
    remote_fetch_failed_.fetch_add(1, std::memory_order_relaxed);
    return fault;
  }
  const MembershipView view = membership_.View();
  const std::vector<int> owners =
      ExpertOwners(task_id, view.NodeIds(), options_.placement);
  Status last = Status::Unavailable("no reachable owner for expert " +
                                    std::to_string(task_id));
  for (size_t i = 0; i < owners.size(); ++i) {
    const int owner = owners[i];
    if (owner == options_.node_id) continue;  // we shed it; nothing here
    const NodeInfo* info = view.Find(owner);
    if (info == nullptr || !CanServeFetches(info->state)) continue;
    auto fetched = transport_->FetchExpert(owner, task_id);
    if (!fetched.ok()) {
      if (fetched.status().code() == StatusCode::kCorruption) {
        // A garbled payload is permanent: fail now and poison the slot
        // instead of asking a replica to re-serve what CRC already
        // rejected once.
        remote_fetch_failed_.fetch_add(1, std::memory_order_relaxed);
        return fetched.status();
      }
      last = fetched.status();
      continue;
    }
    FetchExpertResult result = std::move(fetched).ValueOrDie();
    std::shared_ptr<Sequential> module = std::move(result.module);
    if (module == nullptr) {
      // Wire path: rebuild the skeleton and restore the v3 section bytes.
      // The skeleton's init weights are fully overwritten; the rng only
      // satisfies the builder's signature.
      Rng rng(0x9e3779b9u ^ static_cast<uint64_t>(task_id));
      const ExpertPool& pool = service_.pool();
      module = BuildExpertPart(pool.ExpertConfig(task_id),
                               pool.library_config().conv3_channels(), rng);
      const Status restored =
          DeserializeModulePayload(result.payload, *module);
      if (!restored.ok()) {
        remote_fetch_failed_.fetch_add(1, std::memory_order_relaxed);
        return restored;
      }
    }
    remote_fetch_ok_.fetch_add(1, std::memory_order_relaxed);
    if (i > 0) remote_fetch_replica_.fetch_add(1, std::memory_order_relaxed);
    return module;
  }
  remote_fetch_failed_.fetch_add(1, std::memory_order_relaxed);
  return last;
}

void ClusterNode::DefendSelf() {
  // We are executing, therefore not dead: walk back toward ONLINE. Each
  // accepted transition bumps the epoch, so the corrected view wins the
  // next gossip exchange against the one that declared us OFFLINE.
  const NodeState self = SelfState();
  if (self == NodeState::kOffline) {
    membership_.Transition(options_.node_id, NodeState::kReintegrating);
  }
  if (SelfState() == NodeState::kReintegrating &&
      started_.load(std::memory_order_acquire)) {
    membership_.Transition(options_.node_id, NodeState::kOnline);
  }
}

void ClusterNode::GossipOnce() {
  if (transport_ == nullptr) return;
  const MembershipView view = membership_.View();
  for (const NodeInfo& peer : view.nodes) {
    if (peer.node_id == options_.node_id) continue;
    pings_sent_.fetch_add(1, std::memory_order_relaxed);
    const Status fault = PoeFaultHit("cluster.gossip");
    Result<MembershipView> reply =
        fault.ok() ? transport_->Ping(peer.node_id, membership_.View())
                   : Result<MembershipView>(fault);
    if (reply.ok()) {
      {
        std::lock_guard<std::mutex> lock(gossip_mu_);
        consecutive_ping_failures_[peer.node_id] = 0;
      }
      if (membership_.MergeView(std::move(reply).ValueOrDie())) {
        gossip_merges_.fetch_add(1, std::memory_order_relaxed);
        DefendSelf();
      }
    } else {
      ping_failures_.fetch_add(1, std::memory_order_relaxed);
      int failures = 0;
      {
        std::lock_guard<std::mutex> lock(gossip_mu_);
        failures = ++consecutive_ping_failures_[peer.node_id];
      }
      if (failures >= options_.ping_failures_before_offline) {
        const MembershipView now = membership_.View();
        const NodeInfo* info = now.Find(peer.node_id);
        if (info != nullptr && (info->state == NodeState::kOnline ||
                                info->state == NodeState::kDraining)) {
          membership_.Transition(peer.node_id, NodeState::kOffline);
        }
      }
    }
  }
}

void ClusterNode::GossipLoop() {
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.gossip_interval_ms);
  std::unique_lock<std::mutex> lock(gossip_mu_);
  while (!stop_gossip_) {
    lock.unlock();
    GossipOnce();
    lock.lock();
    gossip_cv_.wait_for(lock, interval, [this] { return stop_gossip_; });
  }
}

ServeStats ClusterNode::stats() const {
  ServeStats stats = server_.stats();
  stats.cluster_epoch = membership_.epoch();
  stats.remote_fetch_requests =
      remote_fetch_requests_.load(std::memory_order_relaxed);
  stats.remote_fetch_ok = remote_fetch_ok_.load(std::memory_order_relaxed);
  stats.remote_fetch_replica =
      remote_fetch_replica_.load(std::memory_order_relaxed);
  stats.remote_fetch_failed =
      remote_fetch_failed_.load(std::memory_order_relaxed);
  stats.peer_fetches_served =
      peer_fetches_served_.load(std::memory_order_relaxed);
  stats.gossip_merges = gossip_merges_.load(std::memory_order_relaxed);
  stats.pings_sent = pings_sent_.load(std::memory_order_relaxed);
  stats.ping_failures = ping_failures_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace poe

#include "cluster/transport.h"

namespace poe {

void LoopbackTransport::Register(int node_id, PeerEndpoint* endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_[node_id] = endpoint;
  crashed_.erase(node_id);
}

void LoopbackTransport::Unregister(int node_id) {
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_.erase(node_id);
}

void LoopbackTransport::Crash(int node_id) {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_.insert(node_id);
}

void LoopbackTransport::Revive(int node_id) {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_.erase(node_id);
}

PeerEndpoint* LoopbackTransport::Resolve(int node_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_.count(node_id) > 0) return nullptr;
  auto it = endpoints_.find(node_id);
  return it == endpoints_.end() ? nullptr : it->second;
}

Result<FetchExpertResult> LoopbackTransport::FetchExpert(int node_id,
                                                         int expert_id) {
  PeerEndpoint* endpoint = Resolve(node_id);
  if (endpoint == nullptr) {
    return Status::Unavailable("node " + std::to_string(node_id) +
                               " is unreachable");
  }
  return endpoint->ServeFetchExpert(expert_id, /*want_payload=*/false);
}

Result<MembershipView> LoopbackTransport::Ping(int node_id,
                                               const MembershipView& view) {
  PeerEndpoint* endpoint = Resolve(node_id);
  if (endpoint == nullptr) {
    return Status::Unavailable("node " + std::to_string(node_id) +
                               " is unreachable");
  }
  return endpoint->ServePing(view);
}

}  // namespace poe

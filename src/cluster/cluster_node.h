// ClusterNode: one member of the distributed expert pool.
//
// Composition: a full single-node serving stack (ModelQueryService +
// InferenceServer) plus the cluster layer around it — a PoolMembership
// view, consistent-hash placement, and a PeerTransport to the other
// nodes. At Start() the node SHEDS every expert master it does not own
// (placement decides; the slot stays, the weights go) and installs a
// remote materializer in its ExpertStore: the first local query that
// needs a non-resident expert fetches it from an owner, installs it as a
// permanent local master (fetch-once caching), and serves. All the
// robustness machinery below the store — per-expert RetryWithBackoff,
// deadlines, degraded assembly, poisoned slots — applies to remote
// fetches exactly as it does to injected local faults, because the fetch
// IS the materialization step.
//
// Failure semantics:
//   - A dead owner is kUnavailable; the fetch tries the replica owner
//     (remote_fetch_replica counts those) and only fails when every
//     owner is exhausted. The pool's retry loop then re-enters with
//     backoff until the deadline; a query that still cannot get the
//     expert serves degraded or fails inside the status whitelist
//     {OK, Unavailable, DeadlineExceeded, ResourceExhausted}.
//   - Gossip failure detection: ping_failures_before_offline consecutive
//     failed pings mark a peer OFFLINE (epoch bump, gossiped outward).
//   - Self-defense: a node that finds ITSELF OFFLINE in a merged view is
//     alive by construction, so it promotes itself REINTEGRATING -> ONLINE
//     with fresh epochs — a wrongly-declared-dead node reinstates itself
//     through the same gossip that condemned it.
//
// Counter identities (asserted by the cluster tests):
//   remote_fetch_requests == remote_fetch_ok + remote_fetch_failed
//   remote_fetch_replica <= remote_fetch_ok
#ifndef POE_CLUSTER_CLUSTER_NODE_H_
#define POE_CLUSTER_CLUSTER_NODE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/membership.h"
#include "cluster/placement.h"
#include "cluster/transport.h"
#include "core/query_service.h"
#include "serve/inference_server.h"

namespace poe {

struct ClusterNodeOptions {
  int node_id = 0;
  PlacementConfig placement;
  /// Release non-owned expert masters at Start(). Off = every node keeps
  /// the full pool resident (no fetches ever; the cluster is then pure
  /// membership/failover bookkeeping).
  bool shed_non_owned = true;
  /// Consecutive failed pings before a peer is declared OFFLINE.
  int ping_failures_before_offline = 2;
  /// Per-fetch I/O budget on the wire transport path (poectl plumbs this
  /// into the WireTransport it builds; the node itself does not time out
  /// loopback fetches).
  double fetch_timeout_ms = 2000.0;
  /// Background gossip period; start_gossip=false (tests, poectl's
  /// explicit loop) leaves gossip to manual GossipOnce() calls.
  double gossip_interval_ms = 250.0;
  bool start_gossip = false;
  /// Serving-stack knobs, passed through unchanged.
  size_t cache_capacity = 64;
  ServingPrecision precision = ServingPrecision::kFloat32;
  InferenceServer::Options serve;
};

class ClusterNode : public PeerEndpoint {
 public:
  /// `initial` must list this node (options.node_id) among its members.
  ClusterNode(ExpertPool pool, MembershipView initial,
              ClusterNodeOptions options);
  ~ClusterNode() override;

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// Must be called before Start(). Not owned; must outlive the node.
  void SetTransport(PeerTransport* transport);

  /// Sheds non-owned masters, installs the remote materializer, starts
  /// gossip (when configured). FailedPrecondition without a transport.
  Status Start();

  /// Stops gossip and drains the inference server. Idempotent.
  void Stop();

  // --- PeerEndpoint (the server half peers see) ---
  Result<FetchExpertResult> ServeFetchExpert(int expert_id,
                                             bool want_payload) override;
  Result<MembershipView> ServePing(const MembershipView& view) override;

  /// One gossip round: ping every peer in the view (OFFLINE included —
  /// that is how a returned node is re-discovered), merge replies, run
  /// failure detection. Safe from any thread.
  void GossipOnce();

  /// Applies a membership transition locally (epoch bump); gossip spreads
  /// it. This is the admin path poectl drives.
  Status RequestTransition(int node_id, NodeState to);

  bool OwnsExpert(int expert_id) const;
  std::vector<int> OwnedExperts() const;
  NodeState SelfState() const;

  int node_id() const { return options_.node_id; }
  MembershipView view() const { return membership_.View(); }
  PoolMembership& membership() { return membership_; }
  ModelQueryService& service() { return service_; }
  InferenceServer& server() { return server_; }

  /// Full ServeStats with the cluster block filled in.
  ServeStats stats() const;

 private:
  /// The ExpertStore's remote materializer: walk the owner list, fetch,
  /// rebuild. kUnavailable (transient, all owners down) feeds the pool's
  /// retry loop; kCorruption (bad payload) poisons the slot.
  Result<std::shared_ptr<Sequential>> FetchExpertModule(int task_id);

  /// Promotes this node out of OFFLINE/REINTEGRATING after a merge that
  /// (wrongly, since we are executing) declared it dead.
  void DefendSelf();

  void GossipLoop();

  ClusterNodeOptions options_;
  PoolMembership membership_;
  ModelQueryService service_;
  InferenceServer server_;
  PeerTransport* transport_ = nullptr;
  std::atomic<bool> started_{false};

  std::thread gossip_thread_;
  std::mutex gossip_mu_;  ///< guards stop flag + per-peer failure counts
  std::condition_variable gossip_cv_;
  bool stop_gossip_ = false;
  std::map<int, int> consecutive_ping_failures_;

  std::atomic<int64_t> remote_fetch_requests_{0};
  std::atomic<int64_t> remote_fetch_ok_{0};
  std::atomic<int64_t> remote_fetch_replica_{0};
  std::atomic<int64_t> remote_fetch_failed_{0};
  std::atomic<int64_t> peer_fetches_served_{0};
  std::atomic<int64_t> gossip_merges_{0};
  std::atomic<int64_t> pings_sent_{0};
  std::atomic<int64_t> ping_failures_{0};
};

}  // namespace poe

#endif  // POE_CLUSTER_CLUSTER_NODE_H_

#include "cluster/membership.h"

#include <algorithm>

namespace poe {

namespace {

/// splitmix64: cheap, well-mixed, deterministic across nodes.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* NodeStateName(NodeState state) {
  switch (state) {
    case NodeState::kOnline: return "ONLINE";
    case NodeState::kDraining: return "DRAINING";
    case NodeState::kOffline: return "OFFLINE";
    case NodeState::kReintegrating: return "REINTEGRATING";
  }
  return "?";
}

bool ValidTransition(NodeState from, NodeState to) {
  switch (from) {
    case NodeState::kOnline:
      return to == NodeState::kDraining || to == NodeState::kOffline;
    case NodeState::kDraining:
      return to == NodeState::kOffline;
    case NodeState::kOffline:
      return to == NodeState::kReintegrating;
    case NodeState::kReintegrating:
      return to == NodeState::kOnline || to == NodeState::kOffline;
  }
  return false;
}

const NodeInfo* MembershipView::Find(int node_id) const {
  for (const NodeInfo& n : nodes) {
    if (n.node_id == node_id) return &n;
  }
  return nullptr;
}

std::vector<int> MembershipView::NodeIds() const {
  std::vector<int> ids;
  ids.reserve(nodes.size());
  for (const NodeInfo& n : nodes) ids.push_back(n.node_id);
  return ids;
}

uint64_t MembershipView::Fingerprint() const {
  uint64_t h = Mix64(epoch);
  for (const NodeInfo& n : nodes) {
    h = Mix64(h ^ Mix64(static_cast<uint64_t>(n.node_id)));
    h = Mix64(h ^ Mix64(static_cast<uint64_t>(n.peer_port) << 32 |
                        static_cast<uint64_t>(n.serve_port)));
    h = Mix64(h ^ Mix64(static_cast<uint64_t>(n.state)));
    for (char c : n.host) h = Mix64(h ^ static_cast<uint8_t>(c));
  }
  return h;
}

std::string MembershipView::ToString() const {
  std::string s = "epoch " + std::to_string(epoch) + " {";
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeInfo& n = nodes[i];
    if (i > 0) s += ", ";
    s += "node " + std::to_string(n.node_id) + " " + n.host + ":" +
         std::to_string(n.peer_port) + " " + NodeStateName(n.state);
  }
  return s + "}";
}

PoolMembership::PoolMembership(MembershipView initial)
    : view_(std::move(initial)) {
  if (view_.epoch == 0) view_.epoch = 1;
  std::sort(view_.nodes.begin(), view_.nodes.end(),
            [](const NodeInfo& a, const NodeInfo& b) {
              return a.node_id < b.node_id;
            });
}

MembershipView PoolMembership::View() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_;
}

uint64_t PoolMembership::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_.epoch;
}

Status PoolMembership::Transition(int node_id, NodeState to) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeInfo* node = nullptr;
  for (NodeInfo& n : view_.nodes) {
    if (n.node_id == node_id) node = &n;
  }
  if (node == nullptr) {
    return Status::InvalidArgument("unknown node " + std::to_string(node_id));
  }
  if (!ValidTransition(node->state, to)) {
    return Status::FailedPrecondition(
        std::string("illegal transition ") + NodeStateName(node->state) +
        " -> " + NodeStateName(to) + " for node " + std::to_string(node_id));
  }
  node->state = to;
  view_.epoch++;
  transitions_++;
  return Status::OK();
}

Status PoolMembership::AddNode(NodeInfo node) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const NodeInfo& n : view_.nodes) {
    if (n.node_id == node.node_id) {
      return Status::AlreadyExists("node " + std::to_string(node.node_id) +
                                   " already in the pool");
    }
  }
  view_.nodes.push_back(std::move(node));
  std::sort(view_.nodes.begin(), view_.nodes.end(),
            [](const NodeInfo& a, const NodeInfo& b) {
              return a.node_id < b.node_id;
            });
  view_.epoch++;
  transitions_++;
  return Status::OK();
}

bool PoolMembership::MergeView(const MembershipView& remote) {
  if (remote.epoch == 0) return false;  // status probe, never a real view
  std::lock_guard<std::mutex> lock(mu_);
  const bool newer = remote.epoch > view_.epoch;
  const bool tiebreak = remote.epoch == view_.epoch &&
                        remote.Fingerprint() < view_.Fingerprint();
  if (!newer && !tiebreak) return false;
  view_ = remote;
  return true;
}

int64_t PoolMembership::transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transitions_;
}

}  // namespace poe

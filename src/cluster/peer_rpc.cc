#include "cluster/peer_rpc.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "net/net_client.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace poe {

namespace {

template <typename T>
void Put(std::vector<uint8_t>& buf, T value) {
  const size_t pos = buf.size();
  buf.resize(pos + sizeof(T));
  std::memcpy(buf.data() + pos, &value, sizeof(T));
}

template <typename T>
T Get(const uint8_t* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

/// Bounds-checked cursor over a body buffer; every decoder drains it and
/// rejects trailing bytes, mirroring the data plane's "body_len must be
/// exactly spent" discipline.
struct Cursor {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;

  template <typename T>
  bool Read(T* out) {
    if (pos + sizeof(T) > len) return false;
    *out = Get<T>(data + pos);
    pos += sizeof(T);
    return true;
  }
  bool ReadBytes(std::string* out, size_t n) {
    if (pos + n > len) return false;
    out->assign(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return true;
  }
  bool Done() const { return pos == len; }
};

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated ") + what + " body");
}

}  // namespace

// ------------------------------------------------------------ codecs

std::vector<uint8_t> EncodeFetchExpertFrame(uint64_t request_id,
                                            int expert_id) {
  std::vector<uint8_t> frame(kWireHeaderBytes);
  Put<int32_t>(frame, static_cast<int32_t>(expert_id));
  SealWireFrame(frame, kWireTypeFetchExpert, request_id);
  return frame;
}

Status DecodeFetchExpertBody(const uint8_t* data, size_t len,
                             int* expert_id) {
  Cursor cur{data, len};
  int32_t id = 0;
  if (!cur.Read(&id) || !cur.Done()) return Truncated("fetch-expert");
  *expert_id = id;
  return Status::OK();
}

std::vector<uint8_t> EncodeFetchExpertReplyFrame(uint64_t request_id,
                                                 const Status& status,
                                                 const std::string& payload) {
  std::vector<uint8_t> frame(kWireHeaderBytes);
  Put<int32_t>(frame, static_cast<int32_t>(status.code()));
  Put<uint32_t>(frame, static_cast<uint32_t>(status.message().size()));
  frame.insert(frame.end(), status.message().begin(), status.message().end());
  const std::string& body = status.ok() ? payload : std::string();
  Put<uint64_t>(frame, static_cast<uint64_t>(body.size()));
  frame.insert(frame.end(), body.begin(), body.end());
  SealWireFrame(frame, kWireTypeFetchExpertReply, request_id);
  return frame;
}

Status DecodeFetchExpertReplyBody(const uint8_t* data, size_t len,
                                  Status* status, std::string* payload) {
  Cursor cur{data, len};
  int32_t code = 0;
  uint32_t msg_len = 0;
  std::string msg;
  uint64_t payload_len = 0;
  if (!cur.Read(&code) || !cur.Read(&msg_len) ||
      !cur.ReadBytes(&msg, msg_len) || !cur.Read(&payload_len) ||
      !cur.ReadBytes(payload, static_cast<size_t>(payload_len)) ||
      !cur.Done()) {
    return Truncated("fetch-expert-reply");
  }
  if (code < 0 || code >= kNumStatusCodes) {
    return Status::InvalidArgument("fetch reply carries unknown status code " +
                                   std::to_string(code));
  }
  *status = Status(static_cast<StatusCode>(code), std::move(msg));
  return Status::OK();
}

std::vector<uint8_t> EncodeViewFrame(uint64_t request_id, uint8_t type,
                                     const MembershipView& view) {
  std::vector<uint8_t> frame(kWireHeaderBytes);
  Put<uint64_t>(frame, view.epoch);
  Put<uint32_t>(frame, static_cast<uint32_t>(view.nodes.size()));
  for (const NodeInfo& n : view.nodes) {
    Put<int32_t>(frame, static_cast<int32_t>(n.node_id));
    Put<uint8_t>(frame, static_cast<uint8_t>(n.state));
    Put<int32_t>(frame, static_cast<int32_t>(n.peer_port));
    Put<int32_t>(frame, static_cast<int32_t>(n.serve_port));
    Put<uint16_t>(frame, static_cast<uint16_t>(n.host.size()));
    frame.insert(frame.end(), n.host.begin(), n.host.end());
  }
  SealWireFrame(frame, type, request_id);
  return frame;
}

Status DecodeViewBody(const uint8_t* data, size_t len, MembershipView* view) {
  Cursor cur{data, len};
  uint32_t num_nodes = 0;
  if (!cur.Read(&view->epoch) || !cur.Read(&num_nodes)) {
    return Truncated("membership-view");
  }
  view->nodes.clear();
  view->nodes.reserve(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    NodeInfo node;
    int32_t id = 0, peer_port = 0, serve_port = 0;
    uint8_t state = 0;
    uint16_t host_len = 0;
    if (!cur.Read(&id) || !cur.Read(&state) || !cur.Read(&peer_port) ||
        !cur.Read(&serve_port) || !cur.Read(&host_len) ||
        !cur.ReadBytes(&node.host, host_len)) {
      return Truncated("membership-view");
    }
    if (state > static_cast<uint8_t>(NodeState::kReintegrating)) {
      return Status::InvalidArgument("membership view carries unknown state " +
                                     std::to_string(state));
    }
    node.node_id = id;
    node.peer_port = peer_port;
    node.serve_port = serve_port;
    node.state = static_cast<NodeState>(state);
    view->nodes.push_back(std::move(node));
  }
  if (!cur.Done()) return Truncated("membership-view");
  return Status::OK();
}

// ------------------------------------------------------------ server

PeerServer::PeerServer(PeerEndpoint* endpoint, Options options)
    : endpoint_(endpoint), options_(std::move(options)) {}

PeerServer::~PeerServer() { Stop(); }

Status PeerServer::Start() {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already started");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad address: " + options_.host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    const Status s =
        Status::IoError(std::string("bind/listen: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void PeerServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  // shutdown() unblocks the accept(); the fd is closed after the thread
  // exits so a racing accept never sees a recycled fd number.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void PeerServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void PeerServer::ServeConnection(int fd) {
  // One request/reply exchange per loop; any framing violation closes the
  // connection (the data plane's rule: never re-sync mid-stream).
  auto read_full = [fd](void* buf, size_t len) -> bool {
    uint8_t* p = static_cast<uint8_t*>(buf);
    size_t got = 0;
    while (got < len) {
      const ssize_t n = ::recv(fd, p + got, len - got, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      got += static_cast<size_t>(n);
    }
    return true;
  };
  auto write_full = [fd](const std::vector<uint8_t>& buf) -> bool {
    size_t sent = 0;
    while (sent < buf.size()) {
      const ssize_t n =
          ::send(fd, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  };

  while (!stopping_.load(std::memory_order_acquire)) {
    uint8_t hbuf[kWireHeaderBytes];
    if (!read_full(hbuf, sizeof(hbuf))) break;
    const uint8_t type = hbuf[5];
    if (type != kWireTypeFetchExpert && type != kWireTypePing) break;
    WireHeader header;
    if (!DecodeHeader(hbuf, sizeof(hbuf), type, options_.max_body_bytes,
                      &header)
             .ok()) {
      break;
    }
    std::vector<uint8_t> body(header.body_len);
    if (!read_full(body.data(), body.size())) break;
    if (Crc32c(body.data(), body.size()) != header.body_crc) break;

    PeerEndpoint* endpoint = endpoint_.load(std::memory_order_acquire);
    if (endpoint == nullptr) break;  // not wired in yet: refuse

    std::vector<uint8_t> reply;
    if (type == kWireTypeFetchExpert) {
      int expert_id = -1;
      const Status decoded =
          DecodeFetchExpertBody(body.data(), body.size(), &expert_id);
      if (!decoded.ok()) break;
      auto result = endpoint->ServeFetchExpert(expert_id,
                                                /*want_payload=*/true);
      if (result.ok()) {
        reply = EncodeFetchExpertReplyFrame(
            header.request_id, Status::OK(),
            std::move(result).ValueOrDie().payload);
      } else {
        reply = EncodeFetchExpertReplyFrame(header.request_id,
                                            result.status(), "");
      }
    } else {
      MembershipView view;
      if (!DecodeViewBody(body.data(), body.size(), &view).ok()) break;
      auto result = endpoint->ServePing(view);
      if (!result.ok()) break;
      reply = EncodeViewFrame(header.request_id, kWireTypePingReply,
                              std::move(result).ValueOrDie());
    }
    if (!write_full(reply)) break;
  }
  ::close(fd);
}

// ------------------------------------------------------------ client

WireTransport::WireTransport(std::function<MembershipView()> view_provider,
                             double timeout_ms)
    : view_provider_(std::move(view_provider)), timeout_ms_(timeout_ms) {}

Result<NodeInfo> WireTransport::Resolve(int node_id) {
  const MembershipView view = view_provider_();
  const NodeInfo* node = view.Find(node_id);
  if (node == nullptr) {
    return Status::InvalidArgument("node " + std::to_string(node_id) +
                                   " is not in the membership view");
  }
  return *node;
}

Result<FetchExpertResult> WireTransport::FetchExpert(int node_id,
                                                     int expert_id) {
  NodeInfo node;
  POE_ASSIGN_OR_RETURN(node, Resolve(node_id));
  NetClient client;
  POE_RETURN_NOT_OK(client.Connect(node.host, node.peer_port));
  POE_RETURN_NOT_OK(client.SetIoTimeout(timeout_ms_));
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  WireHeader header;
  std::vector<uint8_t> body;
  POE_RETURN_NOT_OK(client.Call(EncodeFetchExpertFrame(id, expert_id),
                                kWireTypeFetchExpertReply, &header, &body));
  FetchExpertResult result;
  result.expert_id = expert_id;
  Status remote;
  POE_RETURN_NOT_OK(DecodeFetchExpertReplyBody(body.data(), body.size(),
                                               &remote, &result.payload));
  POE_RETURN_NOT_OK(remote);
  return result;
}

Result<MembershipView> WireTransport::Ping(int node_id,
                                           const MembershipView& view) {
  NodeInfo node;
  POE_ASSIGN_OR_RETURN(node, Resolve(node_id));
  NetClient client;
  POE_RETURN_NOT_OK(client.Connect(node.host, node.peer_port));
  POE_RETURN_NOT_OK(client.SetIoTimeout(timeout_ms_));
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  WireHeader header;
  std::vector<uint8_t> body;
  POE_RETURN_NOT_OK(client.Call(EncodeViewFrame(id, kWireTypePing, view),
                                kWireTypePingReply, &header, &body));
  MembershipView reply;
  POE_RETURN_NOT_OK(DecodeViewBody(body.data(), body.size(), &reply));
  return reply;
}

}  // namespace poe

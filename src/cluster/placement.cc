#include "cluster/placement.h"

#include <algorithm>
#include <cstdint>
#include <utility>

namespace poe {

namespace {

/// splitmix64 — the same mixer the membership fingerprint uses.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<int> ExpertOwners(int expert_id, const std::vector<int>& node_ids,
                              const PlacementConfig& config) {
  if (node_ids.empty()) return {};
  const int replication =
      std::min<int>(std::max(config.replication, 1),
                    static_cast<int>(node_ids.size()));
  const int vnodes = std::max(config.vnodes, 1);

  // ring point -> node id. Rebuilt per lookup: pools are a handful of
  // nodes, so sorting ~n*vnodes pairs is noise next to a branch forward.
  std::vector<std::pair<uint64_t, int>> ring;
  ring.reserve(node_ids.size() * static_cast<size_t>(vnodes));
  for (int id : node_ids) {
    for (int v = 0; v < vnodes; ++v) {
      ring.emplace_back(
          Mix64(static_cast<uint64_t>(static_cast<uint32_t>(id)) << 32 |
                static_cast<uint32_t>(v)),
          id);
    }
  }
  std::sort(ring.begin(), ring.end());

  const uint64_t point =
      Mix64(0x9d5c0ff0e2f1ab13ull ^ static_cast<uint64_t>(expert_id));
  size_t start = 0;
  while (start < ring.size() && ring[start].first < point) ++start;

  std::vector<int> owners;
  owners.reserve(replication);
  for (size_t step = 0; step < ring.size() &&
                        owners.size() < static_cast<size_t>(replication);
       ++step) {
    const int candidate = ring[(start + step) % ring.size()].second;
    if (std::find(owners.begin(), owners.end(), candidate) == owners.end()) {
      owners.push_back(candidate);
    }
  }
  return owners;
}

}  // namespace poe

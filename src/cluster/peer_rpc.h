// Peer RPC: the wire half of the cluster layer.
//
// Rides the data plane's 24-byte header + CRC32C framing (SealWireFrame)
// with its own frame types — 3/4 fetch-expert, 5/6 membership-ping — so
// one framing discipline covers both planes while a NetServer that sees a
// peer frame (or a PeerServer that sees a client frame) rejects it as an
// unexpected type: the planes cannot be confused for each other.
//
// Body layouts (little-endian, like the data plane):
//
//   fetch-expert (3):        [0] i32 expert_id
//   fetch-expert-reply (4):  [0] i32 status_code | [4] u32 msg_len |
//                            msg | u64 payload_len | payload
//                            (payload = v3 expert-section bytes; empty on
//                            a non-OK status)
//   membership-ping (5) and ping-reply (6): one MembershipView —
//                            u64 epoch | u32 num_nodes | per node:
//                            i32 node_id | u8 state | i32 peer_port |
//                            i32 serve_port | u16 host_len | host bytes
//                            (epoch 0 on a ping = status probe: the
//                            receiver answers with its view but adopts
//                            nothing)
//
// PeerServer is the control plane's listener: blocking accept loop, one
// thread per connection. Peer traffic is tiny and rare (a handful of
// fetches at warmup, sub-Hz gossip), so thread-per-connection is the
// simple correct shape — the epoll NetServer stays dedicated to the query
// data plane.
#ifndef POE_CLUSTER_PEER_RPC_H_
#define POE_CLUSTER_PEER_RPC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/membership.h"
#include "cluster/transport.h"
#include "net/wire.h"
#include "util/result.h"
#include "util/status.h"

namespace poe {

// ------------------------------------------------------------ codecs

std::vector<uint8_t> EncodeFetchExpertFrame(uint64_t request_id,
                                            int expert_id);
Status DecodeFetchExpertBody(const uint8_t* data, size_t len,
                             int* expert_id);

std::vector<uint8_t> EncodeFetchExpertReplyFrame(uint64_t request_id,
                                                 const Status& status,
                                                 const std::string& payload);
Status DecodeFetchExpertReplyBody(const uint8_t* data, size_t len,
                                  Status* status, std::string* payload);

/// Encodes a view as a ping (type 5) or ping-reply (type 6) frame.
std::vector<uint8_t> EncodeViewFrame(uint64_t request_id, uint8_t type,
                                     const MembershipView& view);
Status DecodeViewBody(const uint8_t* data, size_t len, MembershipView* view);

// ------------------------------------------------------------ server

/// Listens for peer frames and dispatches them to a PeerEndpoint.
class PeerServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 = ephemeral; read the bound port from port()
    uint32_t max_body_bytes = kDefaultMaxBodyBytes;
  };

  /// `endpoint` may be nullptr at construction (connections are refused
  /// until SetEndpoint) — lets a caller bind the port FIRST, put the real
  /// port into the membership view, build the node from that view, and
  /// only then wire the node in. No port guessing, no bind race.
  PeerServer(PeerEndpoint* endpoint, Options options);
  ~PeerServer();

  void SetEndpoint(PeerEndpoint* endpoint) {
    endpoint_.store(endpoint, std::memory_order_release);
  }

  Status Start();
  void Stop();
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::atomic<PeerEndpoint*> endpoint_;
  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> conn_threads_;
  std::mutex conn_mu_;
};

// ------------------------------------------------------------ client

/// TCP transport: one fresh connection per exchange. Peer RPCs are rare
/// (one fetch per expert ever, sub-Hz gossip), so connection reuse would
/// buy nothing and per-call connections make the transport trivially
/// thread-safe — concurrent Acquires can fetch from different peers at
/// once with no shared client state.
class WireTransport : public PeerTransport {
 public:
  /// `resolve` maps a node id to its current NodeInfo (host + peer_port);
  /// ClusterNode passes a closure over its membership view. `timeout_ms`
  /// caps each exchange (connect + I/O) so a hung peer surfaces as a
  /// transient kUnavailable, not a stuck thread.
  WireTransport(std::function<MembershipView()> view_provider,
                double timeout_ms);

  Result<FetchExpertResult> FetchExpert(int node_id, int expert_id) override;
  Result<MembershipView> Ping(int node_id,
                              const MembershipView& view) override;

 private:
  Result<NodeInfo> Resolve(int node_id);

  std::function<MembershipView()> view_provider_;
  double timeout_ms_;
  std::atomic<uint64_t> next_id_{1};
};

}  // namespace poe

#endif  // POE_CLUSTER_PEER_RPC_H_

#!/usr/bin/env bash
# Kill-a-node smoke for the distributed expert pool (docs/CLUSTER.md).
#
# Two real `poectl cluster serve` processes share one pool at
# replication=1, so every composite query needs a cross-process expert
# fetch. The script then walks the whole lifecycle:
#
#   1. SIGKILL node 1 before node 0 ever fetched from it, and drive load
#      at node 0: every request must RESOLVE inside the status whitelist
#      {OK, Unavailable, DeadlineExceeded, ResourceExhausted} — a hang or
#      a foreign status fails the bench.
#   2. Gossip failure detection marks the dead node OFFLINE (epoch bump).
#   3. A restarted node 1 reintegrates through self-defense gossip
#      (OFFLINE -> REINTEGRATING -> ONLINE) with no operator help.
#   4. A clean load across the healed pool serves with zero failures.
#   5. `cluster drain` / `cluster join` drive the admin transitions.
#   6. SIGTERM both; the shutdown counters must reconcile.
#
# Usage: tools/cluster_smoke.sh [build-dir]   (default: build)
set -euo pipefail

BIN="${1:-build}"
WORK="$(mktemp -d)"
PIDS=""
cleanup() {
  # shellcheck disable=SC2086
  [ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

POOL="$WORK/pool.poe"
ALLOW='unavailable,deadline_exceeded,resource_exhausted'
BASE=$((20000 + RANDOM % 20000))
PEER0=$BASE; PEER1=$((BASE + 1)); SERVE0=$((BASE + 2)); SERVE1=$((BASE + 3))
NODES="0:$PEER0:$SERVE0,1:$PEER1:$SERVE1"

"$BIN/poectl" build "$POOL" 3 2 2 > /dev/null

serve_node() { # id logfile -> sets SERVE_PID
  "$BIN/poectl" cluster serve "$POOL" --id="$1" --nodes="$NODES" \
    --replication=1 --gossip-ms=100 > "$2" 2>&1 &
  SERVE_PID=$!
  PIDS="$PIDS $SERVE_PID"
}

wait_for() { # pattern file
  for _ in $(seq 1 100); do
    grep -Eq "$1" "$2" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "timeout waiting for '$1' in $2" >&2
  cat "$2" >&2
  return 1
}

wait_for_state() { # node_id state
  for _ in $(seq 1 100); do
    "$BIN/poectl" cluster status "$PEER0" > "$WORK/status.log" 2>&1 || true
    grep -Eq "node $1 [^,}]+ $2" "$WORK/status.log" && return 0
    sleep 0.1
  done
  echo "timeout waiting for node $1 to be $2" >&2
  cat "$WORK/status.log" >&2
  return 1
}

echo "== start 2 nodes (replication=1: every composite needs a peer fetch)"
serve_node 0 "$WORK/node0.log"; N0=$SERVE_PID
serve_node 1 "$WORK/node1.log"; N1=$SERVE_PID
wait_for 'cluster node 0' "$WORK/node0.log"
wait_for 'cluster node 1' "$WORK/node1.log"
"$BIN/poectl" cluster status "$PEER0"

echo "== SIGKILL node 1 before node 0 ever fetched from it"
"$BIN/poectl" cluster kill "$N1"
wait "$N1" 2> /dev/null || true

echo "== load at node 0: every future must resolve inside the whitelist"
"$BIN/net_throughput" --target "127.0.0.1:$SERVE0" --seconds 1.0 \
  --conns 2 --max-task 2 --hw 8 --allow "$ALLOW" | tee "$WORK/killload.log"
grep -q '\[bench\] ok:' "$WORK/killload.log"

echo "== gossip failure detection marks the dead node OFFLINE"
wait_for_state 1 OFFLINE
cat "$WORK/status.log"

echo "== restart node 1: self-defense gossip reintegrates it"
serve_node 1 "$WORK/node1b.log"; N1=$SERVE_PID
wait_for 'cluster node 1' "$WORK/node1b.log"
wait_for_state 1 ONLINE
cat "$WORK/status.log"

echo "== clean load across the healed pool: zero failures tolerated"
"$BIN/net_throughput" --target "127.0.0.1:$SERVE0" --seconds 1.0 \
  --conns 2 --max-task 2 --hw 8 | tee "$WORK/cleanload.log"
grep -q '\[bench\] ok:' "$WORK/cleanload.log"

echo "== admin transitions: drain, then join back"
"$BIN/poectl" cluster drain "$PEER0" 1
wait_for_state 1 DRAINING
"$BIN/poectl" cluster join "$PEER0" 1
wait_for_state 1 ONLINE

echo "== SIGTERM both: shutdown counters must reconcile"
kill -TERM "$N0" "$N1"
wait "$N0" 2> /dev/null || true
wait "$N1" 2> /dev/null || true
PIDS=""
cat "$WORK/node0.log" "$WORK/node1b.log"
grep -Eq 'cluster shutdown node 0: [0-9]+ submitted = ' "$WORK/node0.log"
grep -Eq 'cluster fetches node 0: [0-9]+ requests = ' "$WORK/node0.log"
grep -Eq 'cluster membership node 0: epoch [0-9]+' "$WORK/node0.log"
grep -Eq 'cluster shutdown node 1: [0-9]+ submitted = ' "$WORK/node1b.log"
echo "cluster smoke OK"

#!/usr/bin/env bash
# Runs the micro_ops google-benchmark suite and records the results as JSON
# so the perf trajectory is tracked in-repo across PRs.
#
# Usage: tools/bench_to_json.sh [build_dir] [output.json] [extra bench args…]
#
#   tools/bench_to_json.sh                 # build/micro_ops -> BENCH_micro_ops.json
#   tools/bench_to_json.sh build out.json --benchmark_filter='BM_Gemm'
#
# Requires a build configured with -DPOE_BUILD_BENCH=ON. Compare runs only
# on the same machine; the JSON includes the host context for provenance.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_micro_ops.json}"
shift $(( $# > 2 ? 2 : $# )) || true

BIN="$BUILD_DIR/micro_ops"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found — configure with -DPOE_BUILD_BENCH=ON" >&2
  exit 1
fi

"$BIN" --benchmark_out="$OUT" --benchmark_out_format=json \
       --benchmark_format=console "$@"
echo "wrote $OUT"

#!/usr/bin/env bash
# Runs the micro_ops google-benchmark suite and records the results as JSON
# so the perf trajectory is tracked in-repo across PRs.
#
# Usage: tools/bench_to_json.sh [build_dir] [output.json] [extra bench args…]
#
#   tools/bench_to_json.sh                 # build/micro_ops -> BENCH_micro_ops.json
#   tools/bench_to_json.sh build out.json --benchmark_filter='BM_Gemm'
#   tools/bench_to_json.sh build out.json --with-figure7
#
# --with-figure7 additionally runs the figure7 query-time driver (realtime
# PoE assembly vs training-based consolidation) and records its console
# output next to the JSON as BENCH_figure7_query_time.txt.
#
# --with-serving additionally runs the serving-throughput driver (sharded
# single-flight cache + batching server vs the global-mutex baseline,
# hit/miss/mixed workloads x thread count x precision) and records
# BENCH_serving_throughput.json.
#
# --with-net additionally runs the net_throughput loopback load generator
# (closed/open-loop traffic over real TCP frames) and merges its JSON
# under the "net_loopback" key of BENCH_serving_throughput.json.
#
# Requires a build configured with -DPOE_BUILD_BENCH=ON. Compare runs only
# on the same machine; the JSON includes the host context for provenance.
# Conv rows record both lowerings: BM_ConvWrnPrepacked/Int8Calibrated pin
# im2col, BM_ConvWrnDirect{,Int8} pin the direct path, so the committed
# JSON carries the direct-vs-im2col margin alongside the absolute times.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_micro_ops.json}"
shift $(( $# > 2 ? 2 : $# )) || true

WITH_FIGURE7=0
WITH_SERVING=0
WITH_NET=0
ARGS=()
for arg in "$@"; do
  if [[ "$arg" == "--with-figure7" ]]; then
    WITH_FIGURE7=1
  elif [[ "$arg" == "--with-serving" ]]; then
    WITH_SERVING=1
  elif [[ "$arg" == "--with-net" ]]; then
    WITH_NET=1
  else
    ARGS+=("$arg")
  fi
done

BIN="$BUILD_DIR/micro_ops"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found — configure with -DPOE_BUILD_BENCH=ON" >&2
  exit 1
fi

# Every output is written to a temp file and renamed only on success:
# under `set -e` a crashed or interrupted bench run exits here, and the
# previously committed JSON survives instead of being clobbered by a
# stale or truncated one. Benchmark names contain '/' template args
# (BM_Gemm/256, BM_ConvWrn/3/16/32/1/3), so every expansion stays quoted
# — an unquoted filter would glob against the working tree.
TMP_OUT="$OUT.tmp.$$"
trap 'rm -f "$TMP_OUT"' EXIT
"$BIN" --benchmark_out="$TMP_OUT" --benchmark_out_format=json \
       --benchmark_format=console "${ARGS[@]+"${ARGS[@]}"}"
mv "$TMP_OUT" "$OUT"
echo "wrote $OUT"

if [[ "$WITH_SERVING" == 1 ]]; then
  SRV_BIN="$BUILD_DIR/serving_throughput"
  SRV_OUT="BENCH_serving_throughput.json"
  if [[ ! -x "$SRV_BIN" ]]; then
    echo "error: $SRV_BIN not found — configure with -DPOE_BUILD_BENCH=ON" >&2
    exit 1
  fi
  TMP_OUT="$SRV_OUT.tmp.$$"
  "$SRV_BIN" --json "$TMP_OUT"
  mv "$TMP_OUT" "$SRV_OUT"
  echo "wrote $SRV_OUT"
fi

if [[ "$WITH_NET" == 1 ]]; then
  NET_BIN="$BUILD_DIR/net_throughput"
  SRV_OUT="BENCH_serving_throughput.json"
  if [[ ! -x "$NET_BIN" ]]; then
    echo "error: $NET_BIN not found — configure with -DPOE_BUILD_BENCH=ON" >&2
    exit 1
  fi
  if [[ ! -f "$SRV_OUT" ]]; then
    echo "error: $SRV_OUT not found — run with --with-serving first" >&2
    exit 1
  fi
  NET_OUT="BENCH_net_throughput.json.tmp.$$"
  TMP_OUT="$SRV_OUT.tmp.$$"
  trap 'rm -f "$TMP_OUT" "$NET_OUT"' EXIT
  "$NET_BIN" --json "$NET_OUT"
  # Merge the net run under "net_loopback" so the serving JSON stays the
  # one perf-trajectory file for the whole serving stack.
  python3 - "$SRV_OUT" "$NET_OUT" "$TMP_OUT" <<'EOF'
import json, sys
srv_path, net_path, out_path = sys.argv[1:4]
with open(srv_path) as f:
    srv = json.load(f)
with open(net_path) as f:
    srv["net_loopback"] = json.load(f)
with open(out_path, "w") as f:
    json.dump(srv, f, indent=2)
    f.write("\n")
EOF
  rm -f "$NET_OUT"
  mv "$TMP_OUT" "$SRV_OUT"
  echo "merged net_loopback into $SRV_OUT"
fi

if [[ "$WITH_FIGURE7" == 1 ]]; then
  FIG_BIN="$BUILD_DIR/figure7_query_time"
  FIG_OUT="BENCH_figure7_query_time.txt"
  if [[ ! -x "$FIG_BIN" ]]; then
    echo "error: $FIG_BIN not found — configure with -DPOE_BUILD_BENCH=ON" >&2
    exit 1
  fi
  TMP_OUT="$FIG_OUT.tmp.$$"
  "$FIG_BIN" | tee "$TMP_OUT"
  mv "$TMP_OUT" "$FIG_OUT"
  echo "wrote $FIG_OUT"
fi

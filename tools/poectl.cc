// poectl: command-line front-end for building, inspecting, querying, and
// live-upgrading expert pools.
//
// Commands are declared in one registry (kCommands): each entry carries
// its name, synopsis, summary, positional-argument bounds, and allowed
// flags, and the help text is GENERATED from the table — adding a command
// is one entry plus one handler, and usage can never drift from dispatch.
//
// Invocation grammar (uniform across every command):
//   poectl <command> [positionals...] [--flag=value | --flag]...
// Flags may appear anywhere after the command name. Exit codes are
// uniform: 0 = success, 1 = operational failure (bad pool file, failed
// query, transport error), 2 = usage error (unknown command, bad
// arguments, unknown flag).
//
// The pool lifecycle family (`poectl pool <verb>`) groups the mutation-
// oriented verbs; `pool create`, `pool info`, and `pool fsck` are the
// registry-level names of build/info/fsck (both spellings work), and
// `pool upgrade` is the zero-downtime generation swap described in
// docs/POOL_LIFECYCLE.md.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cerrno>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>  // kill() — <csignal> only guarantees raise()

#include "cluster/cluster_node.h"
#include "cluster/peer_rpc.h"
#include "core/expert_pool.h"
#include "core/query_service.h"
#include "core/serialization.h"
#include "core/versioned_pool.h"
#include "data/synthetic.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "models/cost.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "serve/inference_server.h"
#include "util/stopwatch.h"

namespace poe {
namespace {

// ------------------------------------------------------------ arg parsing

/// Everything after the command name, split into positionals and
/// `--name[=value]` flags.
struct ParsedArgs {
  std::vector<std::string> pos;
  std::map<std::string, std::string> flags;

  bool HasFlag(const std::string& name) const {
    return flags.find(name) != flags.end();
  }
  int IntFlag(const std::string& name, int fallback) const {
    auto it = flags.find(name);
    return it != flags.end() ? std::atoi(it->second.c_str()) : fallback;
  }
  /// Positional `i` as int, or `fallback` when absent.
  int IntPos(size_t i, int fallback) const {
    return i < pos.size() ? std::atoi(pos[i].c_str()) : fallback;
  }
};

struct CommandSpec {
  const char* name;      ///< "build" or a two-word family name "pool upgrade"
  const char* synopsis;  ///< positional/flag synopsis for the help text
  const char* summary;   ///< one-line description
  size_t min_pos;
  size_t max_pos;
  std::vector<std::string> flags;  ///< allowed flag names
  std::function<int(const ParsedArgs&)> run;
};

std::vector<int> ParseTaskList(const std::string& arg) {
  std::vector<int> tasks;
  std::string current;
  for (char c : arg + ",") {
    if (c == ',') {
      if (!current.empty()) tasks.push_back(std::atoi(current.c_str()));
      current.clear();
    } else {
      current += c;
    }
  }
  return tasks;
}

/// Loads a pool or prints the error; the `Result` carries the outcome.
Result<ExpertPool> LoadPoolOrComplain(const std::string& path) {
  auto loaded = ExpertPool::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
  }
  return loaded;
}

// --------------------------------------------------------------- handlers

int CmdBuild(const ParsedArgs& a) {
  const std::string path = a.pos[0];
  const int tasks = a.IntPos(1, 8);
  const int classes = a.IntPos(2, 4);
  const int epochs = a.IntPos(3, 10);
  const int seed = a.IntFlag("seed", 1);

  SyntheticDataConfig dc;
  dc.num_tasks = tasks;
  dc.classes_per_task = classes;
  dc.train_per_class = 20;
  dc.test_per_class = 8;
  dc.noise = 0.9f;
  SyntheticDataset data = GenerateSyntheticDataset(dc);
  std::printf("dataset: %d tasks x %d classes\n", tasks, classes);

  // The seed varies oracle init and distillation sampling: two builds with
  // different seeds over the same dataset yield content-distinct experts —
  // the cheap way to produce a "changed" pool for upgrade testing.
  Rng rng(seed);
  WrnConfig oracle_cfg;
  oracle_cfg.kc = 2.0;
  oracle_cfg.ks = 2.0;
  oracle_cfg.num_classes = dc.num_classes();
  Wrn oracle(oracle_cfg, rng);
  TrainOptions opts;
  opts.epochs = epochs;
  opts.lr = 0.08f;
  std::printf("training oracle %s (%d epochs)...\n",
              oracle_cfg.ToString().c_str(), epochs);
  Stopwatch sw;
  TrainScratch(oracle, data.train, opts);
  std::printf("oracle trained in %.1fs, test acc %.1f%%\n",
              sw.ElapsedSeconds(),
              100 * EvaluateAccuracy(ModelLogits(oracle), data.test));

  PoeBuildConfig build;
  build.library_config = oracle_cfg;
  build.library_config.kc = 1.0;
  build.library_config.ks = 1.0;
  build.expert_ks = 0.25;
  build.library_options = opts;
  build.expert_options = opts;
  PoeBuildStats stats;
  ExpertPool pool =
      ExpertPool::Preprocess(ModelLogits(oracle), data, build, rng, &stats);
  std::printf("preprocessing: library %.1fs, %d experts %.1fs\n",
              stats.library_seconds, pool.num_experts(),
              stats.experts_seconds);

  Status s = pool.Save(path);
  if (!s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("pool written to %s\n", path.c_str());
  return 0;
}

int CmdCalibrate(const ParsedArgs& a) {
  const std::string in_path = a.pos[0];
  const std::string out_path = a.pos[1];
  const int num_samples = a.IntPos(2, 64);
  const int hw = a.IntPos(3, 8);
  auto loaded = LoadPoolOrComplain(in_path);
  if (!loaded.ok()) return 1;
  ExpertPool pool = std::move(loaded).ValueOrDie();
  Rng rng(11);
  Tensor samples = Tensor::Randn(
      {num_samples, pool.library_config().in_channels, hw, hw}, rng);
  Stopwatch sw;
  Status s = pool.CalibrateActivations(samples);
  if (!s.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("calibrated activation scales over %d samples in %.1fms\n",
              num_samples, sw.ElapsedMillis());
  s = pool.SetServingPrecision(ServingPrecision::kInt8);
  if (!s.ok()) {
    std::fprintf(stderr, "int8 conversion failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  s = pool.Save(out_path);
  if (!s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("int8 pool (static scales, %lld weight bytes) written to %s\n",
              static_cast<long long>(pool.ServingBytes()), out_path.c_str());
  return 0;
}

int CmdInfo(const ParsedArgs& a) {
  const std::string path = a.pos[0];
  auto loaded = LoadPoolOrComplain(path);
  if (!loaded.ok()) return 1;
  ExpertPool pool = std::move(loaded).ValueOrDie();
  const bool int8 = pool.serving_precision() == ServingPrecision::kInt8;
  std::printf("pool: %s (serving %s, %lld weight bytes)\n", path.c_str(),
              int8 ? "int8" : "f32",
              static_cast<long long>(pool.ServingBytes()));
  std::printf("library: %s (%lld params, %lld bytes)\n",
              pool.library_config().ToString().c_str(),
              static_cast<long long>(pool.library()->NumParams()),
              static_cast<long long>(HeldStateBytes(*pool.library())));
  TablePrinter table({"Expert", "Classes", "Params", "Bytes"});
  for (int t = 0; t < pool.num_experts(); ++t) {
    std::string classes;
    for (int c : pool.hierarchy().task_classes(t)) {
      classes += (classes.empty() ? "" : ",") + std::to_string(c);
    }
    table.AddRow({std::to_string(t), classes,
                  std::to_string(pool.expert(t)->NumParams()),
                  TablePrinter::HumanBytes(HeldStateBytes(*pool.expert(t)))});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int CmdQuery(const ParsedArgs& a) {
  auto loaded = LoadPoolOrComplain(a.pos[0]);
  if (!loaded.ok()) return 1;
  ExpertPool pool = std::move(loaded).ValueOrDie();
  std::vector<int> tasks = ParseTaskList(a.pos[1]);
  Stopwatch sw;
  auto model = pool.Query(tasks);
  const double ms = sw.ElapsedMillis();
  if (!model.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  TaskModel m = std::move(model).ValueOrDie();
  std::printf("assembled M(Q) in %.3fms: %d branches, %zu classes, %lld "
              "params\n",
              ms, m.num_branches(), m.global_classes().size(),
              static_cast<long long>(m.NumParams()));
  return 0;
}

int CmdBench(const ParsedArgs& a) {
  auto loaded = LoadPoolOrComplain(a.pos[0]);
  if (!loaded.ok()) return 1;
  const int num_queries = a.IntPos(1, 100);
  ModelQueryService service(std::move(loaded).ValueOrDie(),
                            /*cache_capacity=*/32);
  const int n = service.pool().num_experts();
  Rng rng(99);
  for (int q = 0; q < num_queries; ++q) {
    const int nq = 1 + static_cast<int>(rng.NextInt(std::min(4, n)));
    std::vector<int> all(n);
    for (int i = 0; i < n; ++i) all[i] = i;
    rng.Shuffle(all);
    service.Query(std::vector<int>(all.begin(), all.begin() + nq));
  }
  QueryStats stats = service.stats();
  std::printf("%lld queries: avg %.3fms, max %.3fms, cache hits %lld\n",
              static_cast<long long>(stats.num_queries), stats.avg_ms(),
              stats.max_ms, static_cast<long long>(stats.cache_hits));
  return 0;
}

int CmdServeBench(const ParsedArgs& a) {
  auto loaded = LoadPoolOrComplain(a.pos[0]);
  if (!loaded.ok()) return 1;
  const int clients = a.IntPos(1, 4);
  const int queries_per_client = a.IntPos(2, 100);
  ModelQueryService service(std::move(loaded).ValueOrDie(),
                            /*cache_capacity=*/32,
                            ServingPrecision::kFloat32, /*cache_shards=*/8);
  InferenceServer::Options opts;
  opts.num_workers = 2;
  opts.queue_capacity = 256;
  InferenceServer server(&service, opts);
  const int n = service.pool().num_experts();

  std::printf("serving %d clients x %d queries (%d experts, 8 shards, 2 "
              "workers)...\n",
              clients, queries_per_client, n);
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(77 + c);
      for (int q = 0; q < queries_per_client; ++q) {
        const int nq = 1 + static_cast<int>(rng.NextInt(std::min(4, n)));
        std::vector<int> all(n);
        for (int i = 0; i < n; ++i) all[i] = i;
        rng.Shuffle(all);
        InferenceRequest req;
        req.task_ids.assign(all.begin(), all.begin() + nq);
        req.input = Tensor::Randn({1, 3, 8, 8}, rng);
        InferenceResponse res = server.Submit(std::move(req)).get();
        if (!res.status.ok() &&
            res.status.code() != StatusCode::kResourceExhausted) {
          std::fprintf(stderr, "query failed: %s\n",
                       res.status.ToString().c_str());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double total_s = wall.ElapsedSeconds();
  server.Shutdown();

  ServeStats stats = server.stats();
  std::printf("%lld requests in %.2fs (%.0f qps end-to-end), %lld rejected "
              "at submission\n",
              static_cast<long long>(stats.submitted), total_s,
              stats.completed / total_s,
              static_cast<long long>(stats.rejected));
  std::printf("latency p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms\n",
              stats.p50_ms, stats.p95_ms, stats.p99_ms, stats.max_ms);
  std::printf("cache: %lld hits / %lld assemblies / %lld coalesced "
              "(hit rate %.1f%%), %lld fused batches avg %.1f req\n",
              static_cast<long long>(stats.cache_hits),
              static_cast<long long>(stats.cache_misses),
              static_cast<long long>(stats.coalesced),
              100 * stats.overall_hit_rate(),
              static_cast<long long>(stats.batches), stats.avg_batch());
  std::printf("experts: %lld branch hits / %lld materializations, "
              "%lld referenced (%s), shared_bytes_saved %lld\n",
              static_cast<long long>(stats.expert_hits),
              static_cast<long long>(stats.expert_misses),
              static_cast<long long>(stats.experts_referenced),
              TablePrinter::HumanBytes(stats.referenced_expert_bytes).c_str(),
              static_cast<long long>(stats.shared_bytes_saved));
  std::printf("dedup: resident composites charge %s as private copies vs "
              "%s deduplicated (saves %s); trunk-fused %lld batches / "
              "%lld rows\n",
              TablePrinter::HumanBytes(stats.resident_model_bytes).c_str(),
              TablePrinter::HumanBytes(stats.trunk_bytes +
                                       stats.referenced_expert_bytes)
                  .c_str(),
              TablePrinter::HumanBytes(stats.resident_dedup_saved_bytes())
                  .c_str(),
              static_cast<long long>(stats.trunk_fused_batches),
              static_cast<long long>(stats.trunk_fused_rows));
  TablePrinter table({"Shard", "Hits", "Misses", "Coalesced", "Evicted",
                      "Resident", "HitRate"});
  for (size_t s = 0; s < stats.shards.size(); ++s) {
    const CacheShardStats& shard = stats.shards[s];
    char rate[16];
    std::snprintf(rate, sizeof(rate), "%.1f%%", 100 * shard.hit_rate());
    table.AddRow({std::to_string(s), std::to_string(shard.hits),
                  std::to_string(shard.misses),
                  std::to_string(shard.coalesced),
                  std::to_string(shard.evictions),
                  std::to_string(shard.size), rate});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("precision: %s, pool weight bytes: %lld\n",
              stats.precision == ServingPrecision::kInt8 ? "int8" : "f32",
              static_cast<long long>(stats.pool_bytes));
  return 0;
}

int CmdFsck(const ParsedArgs& a) {
  const std::string path = a.pos[0];
  auto checked = FsckExpertPool(path);
  if (!checked.ok()) {
    std::fprintf(stderr, "fsck failed: %s\n",
                 checked.status().ToString().c_str());
    return 1;
  }
  const PoolFsckReport report = std::move(checked).ValueOrDie();
  std::printf("pool: %s (format v%u)\n", path.c_str(), report.version);
  TablePrinter table({"Section", "Tag", "Bytes", "CRC", "Detail"});
  for (const PoolSectionReport& section : report.sections) {
    char tag[16];
    std::snprintf(tag, sizeof(tag), "0x%04X", section.tag);
    table.AddRow({section.name, tag,
                  TablePrinter::HumanBytes(section.bytes),
                  section.crc_ok ? "ok" : "BAD", section.detail});
  }
  std::printf("%s", table.ToString().c_str());
  if (!report.ok) {
    std::fprintf(stderr, "fsck: CORRUPT: %s\n", report.error.c_str());
    return 1;
  }
  std::printf("fsck: clean (%zu sections verified)\n",
              report.sections.size());
  return 0;
}

int CmdPoolUpgrade(const ParsedArgs& a) {
  const std::string old_path = a.pos[0];
  const std::string new_path = a.pos[1];
  auto old_loaded = LoadPoolOrComplain(old_path);
  if (!old_loaded.ok()) return 1;
  auto new_loaded = LoadPoolOrComplain(new_path);
  if (!new_loaded.ok()) return 1;

  // Dry-run the swap through the same machinery a live service uses, so
  // the printed diff is EXACTLY what an in-process UpgradePool would see
  // (content CRCs, precision policy, adoption — all of it).
  VersionedPool versioned(std::move(old_loaded).ValueOrDie());
  auto diff = versioned.Swap(std::move(new_loaded).ValueOrDie());
  if (!diff.ok()) {
    std::fprintf(stderr, "pool upgrade: %s\n",
                 diff.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", diff.ValueOrDie().ToString().c_str());

  if (a.HasFlag("apply")) {
    // rename(2) is atomic on the same filesystem: readers see the old
    // bytes or the new bytes, never a torn file.
    if (::rename(new_path.c_str(), old_path.c_str()) != 0) {
      std::fprintf(stderr, "pool upgrade: rename %s -> %s: %s\n",
                   new_path.c_str(), old_path.c_str(), std::strerror(errno));
      return 1;
    }
    std::printf("applied: %s -> %s\n", new_path.c_str(), old_path.c_str());
  }
  if (a.HasFlag("pid")) {
    const int pid = a.IntFlag("pid", 0);
    if (pid <= 0) {
      std::fprintf(stderr, "pool upgrade: bad --pid value\n");
      return 2;
    }
    if (::kill(pid, SIGHUP) != 0) {
      std::fprintf(stderr, "pool upgrade: kill(%d, SIGHUP): %s\n", pid,
                   std::strerror(errno));
      return 1;
    }
    std::printf("sent SIGHUP to %d (net-serve reloads its pool file)\n", pid);
  }
  return 0;
}

volatile std::sig_atomic_t g_stop_requested = 0;
volatile std::sig_atomic_t g_reload_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }
void HandleReloadSignal(int) { g_reload_requested = 1; }

int CmdNetServe(const ParsedArgs& a) {
  const std::string path = a.pos[0];
  const int port = a.IntPos(1, 0);
  const int net_workers = a.IntPos(2, 2);
  auto loaded = LoadPoolOrComplain(path);
  if (!loaded.ok()) return 1;
  ModelQueryService service(std::move(loaded).ValueOrDie(),
                            /*cache_capacity=*/32);
  InferenceServer::Options sopts;
  sopts.num_workers = 2;
  sopts.queue_capacity = 256;
  InferenceServer server(&service, sopts);

  NetServer::Options nopts;
  nopts.port = port;
  nopts.num_workers = net_workers;
  NetServer net(&server, nopts);
  Status started = net.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "net-serve: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%d\n", net.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  // SIGHUP = reload the pool FILE and hot-swap it in as the next
  // generation, without dropping a single connection or in-flight request
  // (`poectl pool upgrade old new --apply --pid=$SRV` does rename+signal).
  std::signal(SIGHUP, HandleReloadSignal);
  while (g_stop_requested == 0) {
    if (g_reload_requested != 0) {
      g_reload_requested = 0;
      auto next = ExpertPool::Load(path);
      if (!next.ok()) {
        std::fprintf(stderr, "reload: %s\n",
                     next.status().ToString().c_str());
      } else {
        const int64_t invalidated_before =
            service.serve_stats().cache_keys_invalidated;
        auto diff = service.UpgradePool(std::move(next).ValueOrDie());
        if (!diff.ok()) {
          std::fprintf(stderr, "upgrade failed: %s\n",
                       diff.status().ToString().c_str());
        } else {
          const int64_t invalidated =
              service.serve_stats().cache_keys_invalidated -
              invalidated_before;
          std::printf("upgraded to generation %llu: %s, %lld cache keys "
                      "invalidated\n",
                      static_cast<unsigned long long>(service.generation()),
                      diff.ValueOrDie().ToString().c_str(),
                      static_cast<long long>(invalidated));
          std::fflush(stdout);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Front-end first (no new submissions, in-flight responses flushed),
  // then the inference server drains.
  net.Stop();
  server.Shutdown();
  const NetStats n = net.stats();
  const ServeStats s = server.stats();
  std::printf("shutdown: %lld frames served (%lld bytes in, %lld out), "
              "%lld protocol errors, %lld conns; %lld submitted = "
              "%lld completed + %lld rejected + %lld expired\n",
              static_cast<long long>(n.responses_sent),
              static_cast<long long>(n.bytes_in),
              static_cast<long long>(n.bytes_out),
              static_cast<long long>(n.protocol_errors),
              static_cast<long long>(n.conns_accepted),
              static_cast<long long>(s.submitted),
              static_cast<long long>(s.completed),
              static_cast<long long>(s.rejected),
              static_cast<long long>(s.deadline_expired));
  std::printf("generation %llu (%lld swapped), %lld cache keys invalidated, "
              "%lld stale-generation pins\n",
              static_cast<unsigned long long>(s.generation),
              static_cast<long long>(s.generations_swapped),
              static_cast<long long>(s.cache_keys_invalidated),
              static_cast<long long>(s.stale_generation_queries));
  return 0;
}

int CmdNetQuery(const ParsedArgs& a) {
  const std::string target = a.pos[0];
  const std::string task_arg = a.pos[1];
  const int hw = a.IntPos(2, 8);
  std::string host = "127.0.0.1";
  int port = 0;
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    port = std::atoi(target.c_str());
  } else {
    host = target.substr(0, colon);
    port = std::atoi(target.c_str() + colon + 1);
  }
  if (port <= 0) {
    std::fprintf(stderr, "net-query: bad target '%s'\n", target.c_str());
    return 2;
  }

  NetClient client;
  Status s = client.Connect(host, port);
  if (!s.ok()) {
    std::fprintf(stderr, "net-query: %s\n", s.ToString().c_str());
    return 1;
  }
  Rng rng(5);
  Tensor probe = Tensor::Randn({1, 3, hw, hw}, rng);
  Stopwatch sw;
  auto r = client.Query(ParseTaskList(task_arg), probe);
  const double rtt_ms = sw.ElapsedMillis();
  if (!r.ok()) {
    std::fprintf(stderr, "net-query: transport: %s\n",
                 r.status().ToString().c_str());
    return 1;
  }
  const WireResponse& res = r.ValueOrDie();
  if (!res.status.ok()) {
    std::fprintf(stderr, "net-query: server: %s\n",
                 res.status.ToString().c_str());
    return 1;
  }
  std::string preds;
  for (int32_t p : res.predictions) {
    preds += (preds.empty() ? "" : ",") + std::to_string(p);
  }
  std::printf("ok: %zu classes, predictions [%s], precision %s%s, "
              "generation %llu, rtt %.3fms (queue %.3fms, server %.3fms)\n",
              res.global_classes.size(), preds.c_str(),
              res.precision == ServingPrecision::kInt8 ? "int8" : "f32",
              res.trunk_degraded ? ", trunk degraded" : "",
              static_cast<unsigned long long>(res.generation), rtt_ms,
              res.queue_ms, res.total_ms);
  return 0;
}

// ------------------------------------------------------- cluster family

/// Parses "host:port" (or a bare port, host defaulting to 127.0.0.1).
bool ParseHostPort(const std::string& target, std::string* host, int* port) {
  *host = "127.0.0.1";
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    *port = std::atoi(target.c_str());
  } else {
    *host = target.substr(0, colon);
    *port = std::atoi(target.c_str() + colon + 1);
  }
  return *port > 0;
}

/// Parses `--nodes=id:peer_port:serve_port[,...]` (3 fields, host
/// 127.0.0.1) or `id:host:peer_port:serve_port` (4 fields). Every node
/// starts ONLINE; the state machine takes over from there.
bool ParseClusterNodes(const std::string& spec,
                       std::vector<NodeInfo>* nodes) {
  std::string entry;
  for (char c : spec + ",") {
    if (c != ',') {
      entry += c;
      continue;
    }
    if (entry.empty()) continue;
    std::vector<std::string> fields;
    std::string field;
    for (char f : entry + ":") {
      if (f == ':') {
        fields.push_back(field);
        field.clear();
      } else {
        field += f;
      }
    }
    NodeInfo node;
    if (fields.size() == 3) {
      node.host = "127.0.0.1";
      node.node_id = std::atoi(fields[0].c_str());
      node.peer_port = std::atoi(fields[1].c_str());
      node.serve_port = std::atoi(fields[2].c_str());
    } else if (fields.size() == 4) {
      node.node_id = std::atoi(fields[0].c_str());
      node.host = fields[1];
      node.peer_port = std::atoi(fields[2].c_str());
      node.serve_port = std::atoi(fields[3].c_str());
    } else {
      return false;
    }
    node.state = NodeState::kOnline;
    nodes->push_back(node);
    entry.clear();
  }
  return !nodes->empty();
}

/// One membership-ping round trip. An epoch-0 `view` is a pure status
/// probe (the receiver adopts nothing); a higher-epoch view is a pushed
/// transition the receiver merges. Either way the reply is the target's
/// post-merge view.
Result<MembershipView> PeerViewExchange(const std::string& host, int port,
                                        const MembershipView& view) {
  NetClient client;
  POE_RETURN_NOT_OK(client.Connect(host, port));
  POE_RETURN_NOT_OK(client.SetIoTimeout(2000.0));
  WireHeader header;
  std::vector<uint8_t> body;
  POE_RETURN_NOT_OK(client.Call(EncodeViewFrame(1, kWireTypePing, view),
                                kWireTypePingReply, &header, &body));
  MembershipView reply;
  POE_RETURN_NOT_OK(DecodeViewBody(body.data(), body.size(), &reply));
  return reply;
}

int CmdClusterServe(const ParsedArgs& a) {
  const std::string path = a.pos[0];
  if (!a.HasFlag("nodes")) {
    std::fprintf(stderr, "cluster serve: --nodes is required\n");
    return 2;
  }
  const int self_id = a.IntFlag("id", 0);
  std::vector<NodeInfo> members;
  if (!ParseClusterNodes(a.flags.at("nodes"), &members)) {
    std::fprintf(stderr, "cluster serve: bad --nodes spec '%s'\n",
                 a.flags.at("nodes").c_str());
    return 2;
  }
  NodeInfo* self = nullptr;
  for (NodeInfo& node : members) {
    if (node.node_id == self_id) self = &node;
  }
  if (self == nullptr) {
    std::fprintf(stderr, "cluster serve: --id=%d is not in --nodes\n",
                 self_id);
    return 2;
  }

  auto loaded = LoadPoolOrComplain(path);
  if (!loaded.ok()) return 1;

  // Bind the peer listener FIRST so the membership view always carries
  // the real port (an ephemeral self.peer_port=0 is resolved here).
  PeerServer::Options popts;
  popts.host = self->host;
  popts.port = self->peer_port;
  PeerServer peer_server(nullptr, popts);
  Status started = peer_server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cluster serve: peer listener: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  self->peer_port = peer_server.port();

  MembershipView view;
  view.nodes = members;
  ClusterNodeOptions options;
  options.node_id = self_id;
  options.placement.replication = a.IntFlag("replication", 2);
  options.gossip_interval_ms = a.IntFlag("gossip-ms", 250);
  options.start_gossip = true;
  options.serve.num_workers = 2;
  ClusterNode node(std::move(loaded).ValueOrDie(), view, options);
  WireTransport transport([&node] { return node.view(); },
                          options.fetch_timeout_ms);
  node.SetTransport(&transport);
  peer_server.SetEndpoint(&node);
  started = node.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cluster serve: %s\n", started.ToString().c_str());
    return 1;
  }

  NetServer::Options nopts;
  nopts.port = self->serve_port;
  nopts.num_workers = a.IntFlag("workers", 2);
  NetServer net(&node.server(), nopts);
  started = net.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cluster serve: data plane: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  std::string owned;
  for (int t : node.OwnedExperts()) {
    owned += (owned.empty() ? "" : ",") + std::to_string(t);
  }
  std::printf("cluster node %d: peer %s:%d, serving on %s:%d, owns [%s]\n",
              self_id, self->host.c_str(), peer_server.port(),
              self->host.c_str(), net.port(), owned.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Data plane first (no new submissions), then the node drains its
  // inference server, then the control plane stops answering peers.
  net.Stop();
  node.Stop();
  peer_server.Stop();

  const ServeStats s = node.stats();
  std::printf("cluster shutdown node %d: %lld submitted = %lld completed + "
              "%lld rejected + %lld expired\n",
              self_id, static_cast<long long>(s.submitted),
              static_cast<long long>(s.completed),
              static_cast<long long>(s.rejected),
              static_cast<long long>(s.deadline_expired));
  std::printf("cluster fetches node %d: %lld requests = %lld ok + %lld "
              "failed (%lld replica), %lld served to peers\n",
              self_id, static_cast<long long>(s.remote_fetch_requests),
              static_cast<long long>(s.remote_fetch_ok),
              static_cast<long long>(s.remote_fetch_failed),
              static_cast<long long>(s.remote_fetch_replica),
              static_cast<long long>(s.peer_fetches_served));
  std::printf("cluster membership node %d: epoch %llu, self %s, %lld "
              "merges, %lld pings, %lld ping failures\n",
              self_id, static_cast<unsigned long long>(s.cluster_epoch),
              NodeStateName(node.SelfState()),
              static_cast<long long>(s.gossip_merges),
              static_cast<long long>(s.pings_sent),
              static_cast<long long>(s.ping_failures));
  return 0;
}

int CmdClusterStatus(const ParsedArgs& a) {
  std::string host;
  int port = 0;
  if (!ParseHostPort(a.pos[0], &host, &port)) {
    std::fprintf(stderr, "cluster status: bad target '%s'\n",
                 a.pos[0].c_str());
    return 2;
  }
  auto reply = PeerViewExchange(host, port, MembershipView{});
  if (!reply.ok()) {
    std::fprintf(stderr, "cluster status: %s\n",
                 reply.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", reply.ValueOrDie().ToString().c_str());
  return 0;
}

/// Probes the target, applies `mutate` to a local copy of its view (each
/// accepted transition bumps the epoch, so the push is strictly newer),
/// pushes it back, and verifies the reply shows `node_id` in `want`.
int PushTransition(const std::string& verb, const std::string& target,
                   int node_id, NodeState want,
                   const std::function<Status(PoolMembership&)>& mutate) {
  std::string host;
  int port = 0;
  if (!ParseHostPort(target, &host, &port)) {
    std::fprintf(stderr, "cluster %s: bad target '%s'\n", verb.c_str(),
                 target.c_str());
    return 2;
  }
  auto probe = PeerViewExchange(host, port, MembershipView{});
  if (!probe.ok()) {
    std::fprintf(stderr, "cluster %s: probe: %s\n", verb.c_str(),
                 probe.status().ToString().c_str());
    return 1;
  }
  PoolMembership membership(std::move(probe).ValueOrDie());
  const Status mutated = mutate(membership);
  if (!mutated.ok()) {
    std::fprintf(stderr, "cluster %s: %s\n", verb.c_str(),
                 mutated.ToString().c_str());
    return 1;
  }
  auto pushed = PeerViewExchange(host, port, membership.View());
  if (!pushed.ok()) {
    std::fprintf(stderr, "cluster %s: push: %s\n", verb.c_str(),
                 pushed.status().ToString().c_str());
    return 1;
  }
  const MembershipView& after = pushed.ValueOrDie();
  const NodeInfo* info = after.Find(node_id);
  if (info == nullptr || info->state != want) {
    std::fprintf(stderr,
                 "cluster %s: target did not adopt the transition:\n%s\n",
                 verb.c_str(), after.ToString().c_str());
    return 1;
  }
  std::printf("node %d is %s\n%s\n", node_id, NodeStateName(want),
              after.ToString().c_str());
  return 0;
}

int CmdClusterDrain(const ParsedArgs& a) {
  const int node_id = a.IntPos(1, -1);
  return PushTransition(
      "drain", a.pos[0], node_id, NodeState::kDraining,
      [node_id](PoolMembership& m) {
        return m.Transition(node_id, NodeState::kDraining);
      });
}

int CmdClusterJoin(const ParsedArgs& a) {
  const int node_id = a.IntPos(1, -1);
  // Walk the node to ONLINE along legal edges (OFFLINE -> REINTEGRATING
  // -> ONLINE; a DRAINING node goes through OFFLINE first). Each step
  // burns an epoch, so the whole walk pushes as one strictly-newer view.
  return PushTransition(
      "join", a.pos[0], node_id, NodeState::kOnline,
      [node_id](PoolMembership& m) -> Status {
        for (int step = 0; step < 4; ++step) {
          const NodeInfo* info = m.View().Find(node_id);
          if (info == nullptr) {
            return Status::InvalidArgument("unknown node " +
                                           std::to_string(node_id));
          }
          if (info->state == NodeState::kOnline) return Status::OK();
          const NodeState next =
              info->state == NodeState::kOffline ? NodeState::kReintegrating
              : info->state == NodeState::kReintegrating
                  ? NodeState::kOnline
                  : NodeState::kOffline;  // DRAINING drains out first
          POE_RETURN_NOT_OK(m.Transition(node_id, next));
        }
        return Status::OK();
      });
}

int CmdClusterKill(const ParsedArgs& a) {
  const int pid = a.IntPos(0, 0);
  if (pid <= 0) {
    std::fprintf(stderr, "cluster kill: bad pid '%s'\n", a.pos[0].c_str());
    return 2;
  }
  if (::kill(pid, SIGKILL) != 0) {
    std::fprintf(stderr, "cluster kill: kill(%d, SIGKILL): %s\n", pid,
                 std::strerror(errno));
    return 1;
  }
  std::printf("sent SIGKILL to %d (gossip will detect the death and mark "
              "the node OFFLINE)\n",
              pid);
  return 0;
}

// --------------------------------------------------------------- registry

const std::vector<CommandSpec>& Commands() {
  static const std::vector<CommandSpec> kCommands = {
      {"build", "<pool.poe> [tasks] [classes] [epochs] [--seed=N]",
       "train an oracle and distill a pool of experts from it", 1, 4,
       {"seed"}, CmdBuild},
      {"info", "<pool.poe>",
       "print the pool's architecture, hierarchy, and storage volumes", 1, 1,
       {}, CmdInfo},
      {"query", "<pool.poe> <task,task,...>",
       "assemble the task-specific model and report size/latency", 2, 2,
       {}, CmdQuery},
      {"bench", "<pool.poe> [num_queries]",
       "measure service-phase latency over random composite queries", 1, 2,
       {}, CmdBench},
      {"calibrate", "<pool.poe> <out.poe> [num_samples] [hw]",
       "record static activation scales and save a packed int8 pool", 2, 4,
       {}, CmdCalibrate},
      {"serve-bench", "<pool.poe> [clients] [queries_per_client]",
       "drive the concurrent serving runtime and print ServeStats", 1, 3,
       {}, CmdServeBench},
      {"fsck", "<pool.poe>",
       "verify the pool file's section CRCs and commit footer", 1, 1,
       {}, CmdFsck},
      {"net-serve", "<pool.poe> [port] [net_workers]",
       "serve over TCP; SIGHUP hot-reloads the pool file as a new "
       "generation, SIGINT/SIGTERM drain and exit", 1, 3,
       {}, CmdNetServe},
      {"net-query", "<host:port|port> <task,task,...> [hw]",
       "send one inference request over the wire protocol", 2, 3,
       {}, CmdNetQuery},
      // Pool lifecycle family: create/info/fsck are the registry-level
      // names of the verbs above; upgrade is the generation swap.
      {"pool create", "<pool.poe> [tasks] [classes] [epochs] [--seed=N]",
       "alias of build", 1, 4, {"seed"}, CmdBuild},
      {"pool info", "<pool.poe>", "alias of info", 1, 1, {}, CmdInfo},
      {"pool fsck", "<pool.poe>", "alias of fsck", 1, 1, {}, CmdFsck},
      {"pool upgrade", "<old.poe> <new.poe> [--apply] [--pid=N]",
       "diff two pools as generations; --apply renames new over old "
       "atomically, --pid=N SIGHUPs a running net-serve to hot-swap", 2, 2,
       {"apply", "pid"}, CmdPoolUpgrade},
      // Cluster family: one process per node; peer fetches + gossip ride
      // the wire protocol's control-plane frame types (docs/CLUSTER.md).
      {"cluster serve",
       "<pool.poe> --id=N --nodes=id:peer:serve[,...] [--replication=N] "
       "[--gossip-ms=N] [--workers=N]",
       "serve as one member of a distributed expert pool: shed non-owned "
       "experts, fetch them from peers on demand, gossip membership", 1, 1,
       {"id", "nodes", "replication", "gossip-ms", "workers"},
       CmdClusterServe},
      {"cluster status", "<host:port|port>",
       "probe a node's membership view (an epoch-0 ping adopts nothing)",
       1, 1, {}, CmdClusterStatus},
      {"cluster drain", "<host:port|port> <node_id>",
       "mark a node DRAINING on the target's view and push it via gossip",
       2, 2, {}, CmdClusterDrain},
      {"cluster join", "<host:port|port> <node_id>",
       "walk a node back to ONLINE (OFFLINE -> REINTEGRATING -> ONLINE) "
       "on the target's view and push it", 2, 2, {}, CmdClusterJoin},
      {"cluster kill", "<pid>",
       "SIGKILL a cluster-serve process - the crash half of the "
       "kill-a-node demo", 1, 1, {}, CmdClusterKill},
  };
  return kCommands;
}

int Usage() {
  std::fprintf(stderr, "usage: poectl <command> [args...] [--flag=value]\n");
  std::fprintf(stderr,
               "exit codes: 0 = ok, 1 = operational failure, 2 = usage\n\n");
  std::fprintf(stderr, "commands:\n");
  for (const CommandSpec& cmd : Commands()) {
    std::fprintf(stderr, "  poectl %s %s\n      %s\n", cmd.name, cmd.synopsis,
                 cmd.summary);
  }
  return 2;
}

int UsageFor(const CommandSpec& cmd) {
  std::fprintf(stderr, "usage: poectl %s %s\n  %s\n", cmd.name, cmd.synopsis,
               cmd.summary);
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string first = argv[1];
  if (first == "help" || first == "--help" || first == "-h") {
    Usage();
    return 0;
  }

  // Longest-match command resolution: a two-word family name ("pool
  // upgrade") wins over a one-word one when both could match.
  const CommandSpec* cmd = nullptr;
  int consumed = 0;
  if (argc >= 3) {
    const std::string two_words = first + " " + argv[2];
    for (const CommandSpec& c : Commands()) {
      if (two_words == c.name) {
        cmd = &c;
        consumed = 3;
        break;
      }
    }
  }
  if (cmd == nullptr) {
    for (const CommandSpec& c : Commands()) {
      if (first == c.name) {
        cmd = &c;
        consumed = 2;
        break;
      }
    }
  }
  if (cmd == nullptr) {
    std::fprintf(stderr, "poectl: unknown command '%s'\n", first.c_str());
    return Usage();
  }

  ParsedArgs args;
  for (int i = consumed; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const size_t eq = arg.find('=');
      const std::string name =
          eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
      const std::string value =
          eq == std::string::npos ? "" : arg.substr(eq + 1);
      bool allowed = false;
      for (const std::string& f : cmd->flags) allowed |= (f == name);
      if (!allowed) {
        std::fprintf(stderr, "poectl %s: unknown flag --%s\n", cmd->name,
                     name.c_str());
        return UsageFor(*cmd);
      }
      args.flags[name] = value;
    } else {
      args.pos.push_back(arg);
    }
  }
  if (args.pos.size() < cmd->min_pos || args.pos.size() > cmd->max_pos) {
    std::fprintf(stderr, "poectl %s: expected %zu..%zu arguments, got %zu\n",
                 cmd->name, cmd->min_pos, cmd->max_pos, args.pos.size());
    return UsageFor(*cmd);
  }
  return cmd->run(args);
}

}  // namespace
}  // namespace poe

int main(int argc, char** argv) { return poe::Main(argc, argv); }

// poectl: command-line front-end for building, inspecting, and querying
// expert pools.
//
//   poectl build <pool.poe> [tasks] [classes_per_task] [epochs]
//       Generates a synthetic benchmark, trains an oracle, runs the PoE
//       preprocessing phase, and saves the pool.
//   poectl info <pool.poe>
//       Prints the pool's architecture, hierarchy, and storage volumes.
//   poectl query <pool.poe> <task,task,...>
//       Assembles the task-specific model and reports its size/latency.
//   poectl bench <pool.poe> [num_queries]
//       Measures service-phase latency over random composite queries.
//   poectl calibrate <pool.poe> <out.poe> [num_samples] [hw]
//       Static activation calibration: runs a sample batch through every
//       layer recording activation ranges, converts the pool to packed
//       int8 serving with those static scales, and saves the int8 pool —
//       which then loads straight to dequant-free, prepacked serving (no
//       f32 round-trip, no per-forward max-abs pass).
//   poectl serve-bench <pool.poe> [clients] [queries_per_client]
//       Drives the concurrent serving runtime (sharded single-flight
//       cache + batching inference server) with client threads issuing
//       composite queries + probe inference, then prints the full
//       ServeStats surface (percentiles, QPS, per-shard hit rates).
//   poectl fsck <pool.poe>
//       Offline integrity check: walks the pool file's sections, verifies
//       each CRC32C and the commit footer, and prints a per-section
//       report. Exit 0 = clean, non-zero = corrupt/truncated/missing.
//   poectl net-serve <pool.poe> [port] [net_workers]
//       Serves the pool over TCP on 127.0.0.1 (port 0 = pick a free one;
//       the chosen port is printed as "listening on 127.0.0.1:PORT").
//       SIGINT/SIGTERM shut the front-end and inference server down
//       gracefully and exit 0.
//   poectl net-query <host:port|port> <task,task,...> [hw]
//       Sends one inference request over the wire protocol (a random
//       probe image of side `hw`, default 8 to match poectl-built pools)
//       and prints the response status, latency, and predictions.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/expert_pool.h"
#include "core/query_service.h"
#include "core/serialization.h"
#include "data/synthetic.h"
#include "distill/specialize.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "models/cost.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "serve/inference_server.h"
#include "util/stopwatch.h"

namespace poe {
namespace {

std::vector<int> ParseTaskList(const std::string& arg) {
  std::vector<int> tasks;
  std::string current;
  for (char c : arg + ",") {
    if (c == ',') {
      if (!current.empty()) tasks.push_back(std::atoi(current.c_str()));
      current.clear();
    } else {
      current += c;
    }
  }
  return tasks;
}

int CmdBuild(int argc, char** argv) {
  const std::string path = argv[2];
  const int tasks = argc > 3 ? std::atoi(argv[3]) : 8;
  const int classes = argc > 4 ? std::atoi(argv[4]) : 4;
  const int epochs = argc > 5 ? std::atoi(argv[5]) : 10;

  SyntheticDataConfig dc;
  dc.num_tasks = tasks;
  dc.classes_per_task = classes;
  dc.train_per_class = 20;
  dc.test_per_class = 8;
  dc.noise = 0.9f;
  SyntheticDataset data = GenerateSyntheticDataset(dc);
  std::printf("dataset: %d tasks x %d classes\n", tasks, classes);

  Rng rng(1);
  WrnConfig oracle_cfg;
  oracle_cfg.kc = 2.0;
  oracle_cfg.ks = 2.0;
  oracle_cfg.num_classes = dc.num_classes();
  Wrn oracle(oracle_cfg, rng);
  TrainOptions opts;
  opts.epochs = epochs;
  opts.lr = 0.08f;
  std::printf("training oracle %s (%d epochs)...\n",
              oracle_cfg.ToString().c_str(), epochs);
  Stopwatch sw;
  TrainScratch(oracle, data.train, opts);
  std::printf("oracle trained in %.1fs, test acc %.1f%%\n",
              sw.ElapsedSeconds(),
              100 * EvaluateAccuracy(ModelLogits(oracle), data.test));

  PoeBuildConfig build;
  build.library_config = oracle_cfg;
  build.library_config.kc = 1.0;
  build.library_config.ks = 1.0;
  build.expert_ks = 0.25;
  build.library_options = opts;
  build.expert_options = opts;
  PoeBuildStats stats;
  ExpertPool pool =
      ExpertPool::Preprocess(ModelLogits(oracle), data, build, rng, &stats);
  std::printf("preprocessing: library %.1fs, %d experts %.1fs\n",
              stats.library_seconds, pool.num_experts(),
              stats.experts_seconds);

  Status s = pool.Save(path);
  if (!s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("pool written to %s\n", path.c_str());
  return 0;
}

int CmdCalibrate(const std::string& in_path, const std::string& out_path,
                 int num_samples, int hw) {
  auto loaded = ExpertPool::Load(in_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  ExpertPool pool = std::move(loaded).ValueOrDie();
  Rng rng(11);
  Tensor samples = Tensor::Randn(
      {num_samples, pool.library_config().in_channels, hw, hw}, rng);
  Stopwatch sw;
  Status s = pool.CalibrateActivations(samples);
  if (!s.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("calibrated activation scales over %d samples in %.1fms\n",
              num_samples, sw.ElapsedMillis());
  s = pool.SetServingPrecision(ServingPrecision::kInt8);
  if (!s.ok()) {
    std::fprintf(stderr, "int8 conversion failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  s = pool.Save(out_path);
  if (!s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("int8 pool (static scales, %lld weight bytes) written to %s\n",
              static_cast<long long>(pool.ServingBytes()), out_path.c_str());
  return 0;
}

int CmdInfo(const std::string& path) {
  auto loaded = ExpertPool::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  ExpertPool pool = std::move(loaded).ValueOrDie();
  const bool int8 = pool.serving_precision() == ServingPrecision::kInt8;
  std::printf("pool: %s (serving %s, %lld weight bytes)\n", path.c_str(),
              int8 ? "int8" : "f32",
              static_cast<long long>(pool.ServingBytes()));
  std::printf("library: %s (%lld params, %lld bytes)\n",
              pool.library_config().ToString().c_str(),
              static_cast<long long>(pool.library()->NumParams()),
              static_cast<long long>(HeldStateBytes(*pool.library())));
  TablePrinter table({"Expert", "Classes", "Params", "Bytes"});
  for (int t = 0; t < pool.num_experts(); ++t) {
    std::string classes;
    for (int c : pool.hierarchy().task_classes(t)) {
      classes += (classes.empty() ? "" : ",") + std::to_string(c);
    }
    table.AddRow({std::to_string(t), classes,
                  std::to_string(pool.expert(t)->NumParams()),
                  TablePrinter::HumanBytes(HeldStateBytes(*pool.expert(t)))});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int CmdQuery(const std::string& path, const std::string& task_arg) {
  auto loaded = ExpertPool::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  ExpertPool pool = std::move(loaded).ValueOrDie();
  std::vector<int> tasks = ParseTaskList(task_arg);
  Stopwatch sw;
  auto model = pool.Query(tasks);
  const double ms = sw.ElapsedMillis();
  if (!model.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  TaskModel m = std::move(model).ValueOrDie();
  std::printf("assembled M(Q) in %.3fms: %d branches, %zu classes, %lld "
              "params\n",
              ms, m.num_branches(), m.global_classes().size(),
              static_cast<long long>(m.NumParams()));
  return 0;
}

int CmdBench(const std::string& path, int num_queries) {
  auto loaded = ExpertPool::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  ModelQueryService service(std::move(loaded).ValueOrDie(),
                            /*cache_capacity=*/32);
  const int n = service.pool().num_experts();
  Rng rng(99);
  for (int q = 0; q < num_queries; ++q) {
    const int nq = 1 + static_cast<int>(rng.NextInt(std::min(4, n)));
    std::vector<int> all(n);
    for (int i = 0; i < n; ++i) all[i] = i;
    rng.Shuffle(all);
    service.Query(std::vector<int>(all.begin(), all.begin() + nq));
  }
  QueryStats stats = service.stats();
  std::printf("%lld queries: avg %.3fms, max %.3fms, cache hits %lld\n",
              static_cast<long long>(stats.num_queries), stats.avg_ms(),
              stats.max_ms, static_cast<long long>(stats.cache_hits));
  return 0;
}

int CmdServeBench(const std::string& path, int clients,
                  int queries_per_client) {
  auto loaded = ExpertPool::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  ModelQueryService service(std::move(loaded).ValueOrDie(),
                            /*cache_capacity=*/32,
                            ServingPrecision::kFloat32, /*cache_shards=*/8);
  InferenceServer::Options opts;
  opts.num_workers = 2;
  opts.queue_capacity = 256;
  InferenceServer server(&service, opts);
  const int n = service.pool().num_experts();

  std::printf("serving %d clients x %d queries (%d experts, 8 shards, 2 "
              "workers)...\n",
              clients, queries_per_client, n);
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(77 + c);
      for (int q = 0; q < queries_per_client; ++q) {
        const int nq = 1 + static_cast<int>(rng.NextInt(std::min(4, n)));
        std::vector<int> all(n);
        for (int i = 0; i < n; ++i) all[i] = i;
        rng.Shuffle(all);
        InferenceRequest req;
        req.task_ids.assign(all.begin(), all.begin() + nq);
        req.input = Tensor::Randn({1, 3, 8, 8}, rng);
        InferenceResponse res = server.Submit(std::move(req)).get();
        if (!res.status.ok() &&
            res.status.code() != StatusCode::kResourceExhausted) {
          std::fprintf(stderr, "query failed: %s\n",
                       res.status.ToString().c_str());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double total_s = wall.ElapsedSeconds();
  server.Shutdown();

  ServeStats stats = server.stats();
  std::printf("%lld requests in %.2fs (%.0f qps end-to-end), %lld rejected "
              "at submission\n",
              static_cast<long long>(stats.submitted), total_s,
              stats.completed / total_s,
              static_cast<long long>(stats.rejected));
  std::printf("latency p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms\n",
              stats.p50_ms, stats.p95_ms, stats.p99_ms, stats.max_ms);
  std::printf("cache: %lld hits / %lld assemblies / %lld coalesced "
              "(hit rate %.1f%%), %lld fused batches avg %.1f req\n",
              static_cast<long long>(stats.cache_hits),
              static_cast<long long>(stats.cache_misses),
              static_cast<long long>(stats.coalesced),
              100 * stats.overall_hit_rate(),
              static_cast<long long>(stats.batches), stats.avg_batch());
  std::printf("experts: %lld branch hits / %lld materializations, "
              "%lld referenced (%s), shared_bytes_saved %lld\n",
              static_cast<long long>(stats.expert_hits),
              static_cast<long long>(stats.expert_misses),
              static_cast<long long>(stats.experts_referenced),
              TablePrinter::HumanBytes(stats.referenced_expert_bytes).c_str(),
              static_cast<long long>(stats.shared_bytes_saved));
  std::printf("dedup: resident composites charge %s as private copies vs "
              "%s deduplicated (saves %s); trunk-fused %lld batches / "
              "%lld rows\n",
              TablePrinter::HumanBytes(stats.resident_model_bytes).c_str(),
              TablePrinter::HumanBytes(stats.trunk_bytes +
                                       stats.referenced_expert_bytes)
                  .c_str(),
              TablePrinter::HumanBytes(stats.resident_dedup_saved_bytes())
                  .c_str(),
              static_cast<long long>(stats.trunk_fused_batches),
              static_cast<long long>(stats.trunk_fused_rows));
  TablePrinter table({"Shard", "Hits", "Misses", "Coalesced", "Evicted",
                      "Resident", "HitRate"});
  for (size_t s = 0; s < stats.shards.size(); ++s) {
    const CacheShardStats& shard = stats.shards[s];
    char rate[16];
    std::snprintf(rate, sizeof(rate), "%.1f%%", 100 * shard.hit_rate());
    table.AddRow({std::to_string(s), std::to_string(shard.hits),
                  std::to_string(shard.misses),
                  std::to_string(shard.coalesced),
                  std::to_string(shard.evictions),
                  std::to_string(shard.size), rate});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("precision: %s, pool weight bytes: %lld\n",
              stats.precision == ServingPrecision::kInt8 ? "int8" : "f32",
              static_cast<long long>(stats.pool_bytes));
  return 0;
}

int CmdFsck(const std::string& path) {
  auto checked = FsckExpertPool(path);
  if (!checked.ok()) {
    std::fprintf(stderr, "fsck failed: %s\n",
                 checked.status().ToString().c_str());
    return 1;
  }
  const PoolFsckReport report = std::move(checked).ValueOrDie();
  std::printf("pool: %s (format v%u)\n", path.c_str(), report.version);
  TablePrinter table({"Section", "Tag", "Bytes", "CRC", "Detail"});
  for (const PoolSectionReport& section : report.sections) {
    char tag[16];
    std::snprintf(tag, sizeof(tag), "0x%04X", section.tag);
    table.AddRow({section.name, tag,
                  TablePrinter::HumanBytes(section.bytes),
                  section.crc_ok ? "ok" : "BAD", section.detail});
  }
  std::printf("%s", table.ToString().c_str());
  if (!report.ok) {
    std::fprintf(stderr, "fsck: CORRUPT: %s\n", report.error.c_str());
    return 1;
  }
  std::printf("fsck: clean (%zu sections verified)\n",
              report.sections.size());
  return 0;
}

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

int CmdNetServe(const std::string& path, int port, int net_workers) {
  auto loaded = ExpertPool::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  ModelQueryService service(std::move(loaded).ValueOrDie(),
                            /*cache_capacity=*/32);
  InferenceServer::Options sopts;
  sopts.num_workers = 2;
  sopts.queue_capacity = 256;
  InferenceServer server(&service, sopts);

  NetServer::Options nopts;
  nopts.port = port;
  nopts.num_workers = net_workers;
  NetServer net(&server, nopts);
  Status started = net.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "net-serve: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%d\n", net.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Front-end first (no new submissions, in-flight responses flushed),
  // then the inference server drains.
  net.Stop();
  server.Shutdown();
  const NetStats n = net.stats();
  const ServeStats s = server.stats();
  std::printf("shutdown: %lld frames served (%lld bytes in, %lld out), "
              "%lld protocol errors, %lld conns; %lld submitted = "
              "%lld completed + %lld rejected + %lld expired\n",
              static_cast<long long>(n.responses_sent),
              static_cast<long long>(n.bytes_in),
              static_cast<long long>(n.bytes_out),
              static_cast<long long>(n.protocol_errors),
              static_cast<long long>(n.conns_accepted),
              static_cast<long long>(s.submitted),
              static_cast<long long>(s.completed),
              static_cast<long long>(s.rejected),
              static_cast<long long>(s.deadline_expired));
  return 0;
}

int CmdNetQuery(const std::string& target, const std::string& task_arg,
                int hw) {
  std::string host = "127.0.0.1";
  int port = 0;
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    port = std::atoi(target.c_str());
  } else {
    host = target.substr(0, colon);
    port = std::atoi(target.c_str() + colon + 1);
  }
  if (port <= 0) {
    std::fprintf(stderr, "net-query: bad target '%s'\n", target.c_str());
    return 2;
  }

  NetClient client;
  Status s = client.Connect(host, port);
  if (!s.ok()) {
    std::fprintf(stderr, "net-query: %s\n", s.ToString().c_str());
    return 1;
  }
  Rng rng(5);
  Tensor probe = Tensor::Randn({1, 3, hw, hw}, rng);
  Stopwatch sw;
  auto r = client.Query(ParseTaskList(task_arg), probe);
  const double rtt_ms = sw.ElapsedMillis();
  if (!r.ok()) {
    std::fprintf(stderr, "net-query: transport: %s\n",
                 r.status().ToString().c_str());
    return 1;
  }
  const WireResponse& res = r.ValueOrDie();
  if (!res.status.ok()) {
    std::fprintf(stderr, "net-query: server: %s\n",
                 res.status.ToString().c_str());
    return 1;
  }
  std::string preds;
  for (int32_t p : res.predictions) {
    preds += (preds.empty() ? "" : ",") + std::to_string(p);
  }
  std::printf("ok: %zu classes, predictions [%s], precision %s%s, "
              "rtt %.3fms (queue %.3fms, server %.3fms)\n",
              res.global_classes.size(), preds.c_str(),
              res.precision == ServingPrecision::kInt8 ? "int8" : "f32",
              res.trunk_degraded ? ", trunk degraded" : "", rtt_ms,
              res.queue_ms, res.total_ms);
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  poectl build <pool.poe> [tasks] [classes] [epochs]\n"
               "  poectl info  <pool.poe>\n"
               "  poectl query <pool.poe> <task,task,...>\n"
               "  poectl bench <pool.poe> [num_queries]\n"
               "  poectl calibrate <pool.poe> <out.poe> [num_samples] [hw]\n"
               "  poectl serve-bench <pool.poe> [clients] "
               "[queries_per_client]\n"
               "  poectl fsck  <pool.poe>\n"
               "  poectl net-serve <pool.poe> [port] [net_workers]\n"
               "  poectl net-query <host:port|port> <task,task,...> [hw]\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "build") return CmdBuild(argc, argv);
  if (cmd == "info") return CmdInfo(argv[2]);
  if (cmd == "fsck") return CmdFsck(argv[2]);
  if (cmd == "query" && argc >= 4) return CmdQuery(argv[2], argv[3]);
  if (cmd == "bench") {
    return CmdBench(argv[2], argc > 3 ? std::atoi(argv[3]) : 100);
  }
  if (cmd == "calibrate" && argc >= 4) {
    return CmdCalibrate(argv[2], argv[3], argc > 4 ? std::atoi(argv[4]) : 64,
                        argc > 5 ? std::atoi(argv[5]) : 8);
  }
  if (cmd == "serve-bench") {
    return CmdServeBench(argv[2], argc > 3 ? std::atoi(argv[3]) : 4,
                         argc > 4 ? std::atoi(argv[4]) : 100);
  }
  if (cmd == "net-serve") {
    return CmdNetServe(argv[2], argc > 3 ? std::atoi(argv[3]) : 0,
                       argc > 4 ? std::atoi(argv[4]) : 2);
  }
  if (cmd == "net-query" && argc >= 4) {
    return CmdNetQuery(argv[2], argv[3], argc > 4 ? std::atoi(argv[4]) : 8);
  }
  return Usage();
}

}  // namespace
}  // namespace poe

int main(int argc, char** argv) { return poe::Main(argc, argv); }

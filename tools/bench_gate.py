#!/usr/bin/env python3
"""Kernel-speedup regression gate for CI.

Absolute benchmark times are not comparable across runners (different
CPUs, different load), so the gate is built on a same-machine-safe
quantity: the RATIO of the scalar-forced kernel's time to the SIMD
kernel's time for the same benchmark, both measured in one job on one
machine. A dispatch bug, a de-vectorized hot loop, or a packing
regression collapses that ratio no matter which CPU the runner has.

Both sides pin the kernel via POE_GEMM_KERNEL (scalar vs avx2) because
auto-dispatch picks different kernels on different fleets (avx512 on one
recorder, avx2 on a hosted runner) and their ratios are not comparable;
avx2 is the portable lowest common denominator of x86-64 CI fleets.

Alongside the scalar/SIMD ratios, the gate tracks int8-vs-f32 ratios
(CROSS_RATIOS) measured within the SIMD run, so a quantized-kernel-only
regression fails CI even when the scalar int8 kernel regresses in
lockstep and keeps the scalar/SIMD ratio flat.

  record  writes the committed baseline from two google-benchmark JSONs
  check   compares HEAD's ratios against the baseline:
            - >2x collapse of a ratio  -> FAIL (exit 1)
            - outside the +-25% band   -> advisory warning only
          and emits a markdown table (GitHub step summary friendly).

Only benchmark names present in both runs and the baseline participate;
names with '/' template args (BM_Gemm/256) are exact-matched, never
pattern-matched, so they cannot be silently dropped.
"""

import argparse
import json
import sys

FAIL_FACTOR = 2.0  # ratio collapsed to < baseline/2 -> hard failure
ADVISORY_BAND = 0.25  # +-25% drift -> warning, not failure

# Cross-benchmark ratios computed within the SIMD run alone: the f32 GEMM
# time over the int8 GEMM time at the same geometry (same machine, same
# job). An int8-only collapse — a broken VNNI/AVX2 int8 dispatch, a
# de-vectorized pack or dequantizing store — leaves every scalar-vs-SIMD
# ratio healthy (the scalar int8 kernel degrades in lockstep) but
# collapses THIS ratio, so it gates exactly like a SIMD collapse does.
CROSS_RATIOS = {
    "int8_vs_f32/Gemm/64": ("BM_Gemm/64", "BM_GemmS8/64"),
    "int8_vs_f32/Gemm/256": ("BM_Gemm/256", "BM_GemmS8/256"),
    # Direct-conv gates. int8_vs_f32 catches an int8-only collapse on the
    # direct path; the direct_vs_im2col pairs (im2col time over direct
    # time, > 1 when direct wins) catch the direct lowering itself
    # regressing to — or below — the im2col path it replaced.
    "int8_vs_f32/ConvWrnDirect/64": ("BM_ConvWrnDirect/64/64/32/1/3",
                                     "BM_ConvWrnDirectInt8/64/64/32/1/3"),
    "direct_vs_im2col/ConvWrn/64": ("BM_ConvWrnPrepacked/64/64/32/1/3",
                                    "BM_ConvWrnDirect/64/64/32/1/3"),
    "direct_vs_im2col/ConvWrnInt8/64": (
        "BM_ConvWrnInt8Calibrated/64/64/32/1/3",
        "BM_ConvWrnDirectInt8/64/64/32/1/3"),
}


def load_benchmark_times(path):
    """name -> real_time (ns) from a google-benchmark JSON file."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        name = bench["name"]
        times[name] = float(bench["real_time"])
    return times


def compute_ratios(scalar_path, simd_path):
    scalar = load_benchmark_times(scalar_path)
    simd = load_benchmark_times(simd_path)
    ratios = {}
    for name in sorted(scalar.keys() & simd.keys()):
        if simd[name] > 0:
            ratios[name] = scalar[name] / simd[name]
    for name, (f32_name, int8_name) in CROSS_RATIOS.items():
        if simd.get(int8_name, 0) > 0 and f32_name in simd:
            ratios[name] = simd[f32_name] / simd[int8_name]
    return ratios


def cmd_record(args):
    ratios = compute_ratios(args.scalar, args.simd)
    if not ratios:
        print("error: no common benchmarks between the two runs",
              file=sys.stderr)
        return 1
    out = {
        "description": "scalar/simd real_time ratio per benchmark "
                       "(see tools/bench_gate.py)",
        "simd_kernel": args.simd_kernel,
        "ratios": {name: round(r, 3) for name, r in ratios.items()},
    }
    with open(args.out, "w") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out} ({len(ratios)} benchmarks)")
    return 0


def cmd_check(args):
    with open(args.baseline) as f:
        baseline_doc = json.load(f)
    baseline = baseline_doc["ratios"]
    head = compute_ratios(args.scalar, args.simd)

    rows = []
    failures = []
    warnings = []
    for name in sorted(baseline.keys()):
        if name not in head:
            warnings.append(f"{name}: in baseline but not measured at HEAD")
            rows.append((name, baseline[name], None, "MISSING"))
            continue
        base, now = baseline[name], head[name]
        drift = now / base - 1.0
        if now < base / FAIL_FACTOR:
            status = "FAIL"
            failures.append(
                f"{name}: speedup ratio collapsed {base:.2f} -> {now:.2f} "
                f"(>{FAIL_FACTOR:g}x regression)")
        elif abs(drift) > ADVISORY_BAND:
            status = "WARN"
            warnings.append(
                f"{name}: ratio drifted {drift:+.0%} "
                f"(advisory band is +-{ADVISORY_BAND:.0%})")
        else:
            status = "OK"
        rows.append((name, base, now, status))
    for name in sorted(head.keys() - baseline.keys()):
        rows.append((name, None, head[name], "NEW"))

    lines = [
        "### Kernel-speedup regression gate (scalar vs "
        f"{baseline_doc.get('simd_kernel', 'simd')})",
        "",
        "| benchmark | baseline ratio | HEAD ratio | drift | status |",
        "|---|---:|---:|---:|---|",
    ]
    for name, base, now, status in rows:
        base_s = f"{base:.2f}" if base is not None else "—"
        now_s = f"{now:.2f}" if now is not None else "—"
        drift_s = (f"{now / base - 1.0:+.0%}"
                   if base is not None and now is not None else "—")
        lines.append(f"| `{name}` | {base_s} | {now_s} | {drift_s} | {status} |")
    lines.append("")
    lines.append(f"Hard gate: >{FAIL_FACTOR:g}x ratio collapse. "
                 f"Advisory band: ±{ADVISORY_BAND:.0%}.")
    table = "\n".join(lines)

    print(table)
    if args.summary:
        with open(args.summary, "a") as f:
            f.write(table + "\n")

    for warning in warnings:
        print(f"::warning::{warning}")
    for failure in failures:
        print(f"::error::{failure}")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="write the committed ratio baseline")
    rec.add_argument("--scalar", required=True,
                     help="benchmark JSON from a POE_GEMM_KERNEL=scalar run")
    rec.add_argument("--simd", required=True,
                     help="benchmark JSON from the SIMD-kernel run")
    rec.add_argument("--simd-kernel", default="avx2",
                     help="kernel name the --simd run pinned (provenance)")
    rec.add_argument("--out", required=True)
    rec.set_defaults(func=cmd_record)

    chk = sub.add_parser("check", help="gate HEAD ratios against the baseline")
    chk.add_argument("--scalar", required=True)
    chk.add_argument("--simd", required=True)
    chk.add_argument("--baseline", required=True)
    chk.add_argument("--summary", default="",
                     help="file to append the markdown table to "
                          "(e.g. $GITHUB_STEP_SUMMARY)")
    chk.set_defaults(func=cmd_check)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
